//! AES-128 as a sequential circuit: one round per clock cycle with the
//! key schedule computed on the fly (20 S-boxes per cycle).
//!
//! The S-box inverts in the tower field GF(((2²)²)²) — 36 AND gates per
//! S-box, close to the 32-AND Boyar–Peralta circuit behind the paper's
//! 6,400-gate figure. The basis-change matrices are *derived* at build
//! time (root search + Gaussian elimination), not transcribed, and the
//! construction is validated against the real AES S-box.

use super::BenchCircuit;
use crate::ir::DffInit;
#[cfg(test)]
use crate::ir::Role;
use crate::sim::PartyData;
use crate::{Bus, CircuitBuilder, WireId};

// ---------------------------------------------------------------------
// Cleartext tower-field arithmetic (used to derive circuit matrices).
// ---------------------------------------------------------------------

/// GF(4) = GF(2)[z]/(z² + z + 1); 2-bit values, bit 1 = z coefficient.
fn gf4_mul(a: u8, b: u8) -> u8 {
    let (a0, a1) = (a & 1, (a >> 1) & 1);
    let (b0, b1) = (b & 1, (b >> 1) & 1);
    let m0 = a0 & b0;
    let m2 = a1 & b1;
    let m1 = (a0 ^ a1) & (b0 ^ b1);
    ((m0 ^ m1) << 1) | (m0 ^ m2)
}

/// Squaring in GF(4): (a1·z + a0)² = a1·z + (a0 ⊕ a1). Also the inverse.
#[cfg(test)]
fn gf4_sq(a: u8) -> u8 {
    let (a0, a1) = (a & 1, (a >> 1) & 1);
    (a1 << 1) | (a0 ^ a1)
}

/// GF(16) = GF(4)[Z]/(Z² + Z + N) with N = z (0b10); 4-bit values,
/// high 2 bits = Z coefficient.
const N4: u8 = 0b10;

fn gf16_mul(x: u8, y: u8) -> u8 {
    let (c1, d1) = (x >> 2, x & 3);
    let (c2, d2) = (y >> 2, y & 3);
    let p0 = gf4_mul(d1, d2);
    let p2 = gf4_mul(c1, c2);
    let p1 = gf4_mul(c1 ^ d1, c2 ^ d2);
    (((p1 ^ p0) & 3) << 2) | (p0 ^ gf4_mul(N4, p2))
}

fn gf16_sq(x: u8) -> u8 {
    gf16_mul(x, x)
}

/// λ for GF(256) = GF(16)[W]/(W² + W + λ): the smallest constant making
/// the polynomial irreducible (no d with d² + d = λ).
fn lambda() -> u8 {
    let roots: Vec<u8> = (0..16).map(|d| gf16_sq(d) ^ d).collect();
    (1..16)
        .find(|l| !roots.contains(l))
        .expect("irreducible λ exists")
}

/// Tower-field GF(256) multiply; 8-bit values, high nibble = W coefficient.
fn gf256t_mul(x: u8, y: u8, lam: u8) -> u8 {
    let (a1, b1) = (x >> 4, x & 15);
    let (a2, b2) = (y >> 4, y & 15);
    let p0 = gf16_mul(b1, b2);
    let p2 = gf16_mul(a1, a2);
    let p1 = gf16_mul(a1 ^ b1, a2 ^ b2);
    ((p1 ^ p0) << 4) | (p0 ^ gf16_mul(lam, p2))
}

/// AES-polynomial GF(256) multiply (x⁸ + x⁴ + x³ + x + 1).
fn gf256a_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            acc ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1b;
        }
        b >>= 1;
    }
    acc
}

/// The AES S-box, computed from inversion + affine transform.
pub(crate) fn aes_sbox(x: u8) -> u8 {
    let inv = if x == 0 {
        0
    } else {
        // x^254 by repeated multiplication (fine at build time).
        let mut acc = 1u8;
        for _ in 0..254 {
            acc = gf256a_mul(acc, x);
        }
        acc
    };
    inv ^ inv.rotate_left(1) ^ inv.rotate_left(2) ^ inv.rotate_left(3) ^ inv.rotate_left(4) ^ 0x63
}

/// An 8×8 GF(2) matrix stored as 8 columns (`cols[j]` bit `i` = M[i][j]).
#[derive(Clone, Copy, Debug)]
struct BitMatrix {
    cols: [u8; 8],
}

impl BitMatrix {
    fn apply(&self, x: u8) -> u8 {
        let mut out = 0;
        for (j, &col) in self.cols.iter().enumerate() {
            if (x >> j) & 1 == 1 {
                out ^= col;
            }
        }
        out
    }

    /// Gauss–Jordan inverse over GF(2).
    fn inverse(&self) -> BitMatrix {
        // Work row-wise: rows[i] = (matrix row i, identity row i).
        let mut rows = [(0u8, 0u8); 8];
        for (i, row) in rows.iter_mut().enumerate() {
            let mut r = 0u8;
            for j in 0..8 {
                r |= ((self.cols[j] >> i) & 1) << j;
            }
            *row = (r, 1 << i);
        }
        for col in 0..8 {
            let pivot = (col..8)
                .find(|&r| (rows[r].0 >> col) & 1 == 1)
                .expect("matrix is invertible");
            rows.swap(col, pivot);
            let (pr, pi) = rows[col];
            for (r, row) in rows.iter_mut().enumerate() {
                if r != col && (row.0 >> col) & 1 == 1 {
                    row.0 ^= pr;
                    row.1 ^= pi;
                }
            }
        }
        // rows[i].1 is row i of the inverse; convert back to columns.
        let mut cols = [0u8; 8];
        for (i, &(_, inv_row)) in rows.iter().enumerate() {
            for (j, col) in cols.iter_mut().enumerate() {
                *col |= ((inv_row >> j) & 1) << i;
            }
        }
        BitMatrix { cols }
    }

    /// `self · other`.
    fn compose(&self, other: &BitMatrix) -> BitMatrix {
        BitMatrix {
            cols: core::array::from_fn(|j| self.apply(other.cols[j])),
        }
    }
}

/// Basis-change data for the tower-field S-box.
struct SboxMaps {
    lam: u8,
    /// AES standard basis → tower basis.
    to_tower: BitMatrix,
    /// tower basis → AES basis, composed with the S-box affine matrix.
    from_tower_affine: BitMatrix,
}

fn sbox_maps() -> SboxMaps {
    let lam = lambda();
    // Find a root β of the AES polynomial inside the tower field; the map
    // x ↦ β extends to a field isomorphism x^j ↦ β^j.
    let beta = (2u8..=255)
        .find(|&b| {
            let p = |e: u32| (0..e).fold(1u8, |acc, _| gf256t_mul(acc, b, lam));
            p(8) ^ p(4) ^ p(3) ^ p(1) ^ 1 == 0
        })
        .expect("AES polynomial has a root in any GF(256)");
    let mut cols = [0u8; 8];
    let mut pw = 1u8;
    for col in cols.iter_mut() {
        *col = pw;
        pw = gf256t_mul(pw, beta, lam);
    }
    let to_tower = BitMatrix { cols };
    // AES affine matrix A: A·v = v ⊕ v⋘1 ⊕ v⋘2 ⊕ v⋘3 ⊕ v⋘4, and
    // (v⋘k) bit i = v bit (i−k mod 8), so row i sums v_j for
    // (i − j) mod 8 ∈ {0, 1, 2, 3, 4}.
    let affine = BitMatrix {
        cols: core::array::from_fn(|j| {
            let mut col = 0u8;
            for i in 0..8 {
                if ((i + 8 - j) % 8) <= 4 {
                    col |= 1 << i;
                }
            }
            col
        }),
    };
    SboxMaps {
        lam,
        to_tower,
        from_tower_affine: affine.compose(&to_tower.inverse()),
    }
}

// ---------------------------------------------------------------------
// Circuit construction.
// ---------------------------------------------------------------------

/// Applies a GF(2) linear map as a free XOR network.
fn apply_matrix(b: &mut CircuitBuilder, m: &BitMatrix, x: &[WireId]) -> Bus {
    (0..8)
        .map(|i| {
            let terms: Vec<WireId> = (0..8)
                .filter(|&j| (m.cols[j] >> i) & 1 == 1)
                .map(|j| x[j])
                .collect();
            if terms.is_empty() {
                b.constant(false)
            } else {
                b.xor_reduce(&terms)
            }
        })
        .collect()
}

/// GF(4) multiplier: 3 ANDs (Karatsuba).
fn gf4_mul_circ(b: &mut CircuitBuilder, a: &[WireId], c: &[WireId]) -> Bus {
    let m0 = b.and(a[0], c[0]);
    let m2 = b.and(a[1], c[1]);
    let sa = b.xor(a[0], a[1]);
    let sc = b.xor(c[0], c[1]);
    let m1 = b.and(sa, sc);
    vec![b.xor(m0, m2), b.xor(m0, m1)]
}

/// GF(4) squaring/inversion (linear).
fn gf4_sq_circ(b: &mut CircuitBuilder, a: &[WireId]) -> Bus {
    vec![b.xor(a[0], a[1]), a[1]]
}

/// Multiply a GF(4) value by the constant N = z (linear): z·(a1 z + a0) =
/// a1 z² + a0 z = (a0 ⊕ a1) z + a1.
fn gf4_mul_n_circ(b: &mut CircuitBuilder, a: &[WireId]) -> Bus {
    vec![a[1], b.xor(a[0], a[1])]
}

/// GF(16) multiplier: 9 ANDs.
fn gf16_mul_circ(b: &mut CircuitBuilder, x: &[WireId], y: &[WireId]) -> Bus {
    let (d1, c1) = (&x[..2], &x[2..]);
    let (d2, c2) = (&y[..2], &y[2..]);
    let p0 = gf4_mul_circ(b, d1, d2);
    let p2 = gf4_mul_circ(b, c1, c2);
    let s1 = b.xor_bus(d1, c1);
    let s2 = b.xor_bus(d2, c2);
    let p1 = gf4_mul_circ(b, &s1, &s2);
    let hi = b.xor_bus(&p1, &p0);
    let np2 = gf4_mul_n_circ(b, &p2);
    let lo = b.xor_bus(&p0, &np2);
    [lo, hi].concat()
}

/// GF(16) inversion via the GF(4) sub-tower: 9 ANDs.
/// `(c·Z + d)⁻¹ = c·δ⁻¹·Z + (c ⊕ d)·δ⁻¹` with `δ = c²·N ⊕ c·d ⊕ d²`.
fn gf16_inv_circ(b: &mut CircuitBuilder, x: &[WireId]) -> Bus {
    let (d, c) = (&x[..2].to_vec(), &x[2..].to_vec());
    let c2 = gf4_sq_circ(b, c);
    let c2n = gf4_mul_n_circ(b, &c2);
    let cd = gf4_mul_circ(b, c, d);
    let d2 = gf4_sq_circ(b, d);
    let t = b.xor_bus(&c2n, &cd);
    let delta = b.xor_bus(&t, &d2);
    let dinv = gf4_sq_circ(b, &delta); // inverse = square in GF(4)
    let hi = gf4_mul_circ(b, c, &dinv);
    let cpd = b.xor_bus(c, d);
    let lo = gf4_mul_circ(b, &cpd, &dinv);
    [lo, hi].concat()
}

/// GF(256) tower inversion: 36 ANDs.
/// `(a·W + b)⁻¹ = a·Δ⁻¹·W + (a ⊕ b)·Δ⁻¹` with `Δ = a²·λ ⊕ a·b ⊕ b²`.
fn gf256t_inv_circ(b: &mut CircuitBuilder, x: &[WireId], lam: u8, sq16: &BitMatrix) -> Bus {
    let (blo, ahi) = (&x[..4].to_vec(), &x[4..].to_vec());
    // a²λ and b² are linear; derive their 4×4 matrices from cleartext math.
    let sq_lam = |b_: &mut CircuitBuilder, v: &[WireId]| -> Bus {
        (0..4)
            .map(|i| {
                let terms: Vec<WireId> = (0..4)
                    .filter(|&j| (gf16_mul(lam, gf16_sq(1 << j)) >> i) & 1 == 1)
                    .map(|j| v[j])
                    .collect();
                if terms.is_empty() {
                    b_.constant(false)
                } else {
                    b_.xor_reduce(&terms)
                }
            })
            .collect()
    };
    let sq = |b_: &mut CircuitBuilder, v: &[WireId]| -> Bus {
        (0..4)
            .map(|i| {
                let terms: Vec<WireId> = (0..4)
                    .filter(|&j| (sq16.cols[j] >> i) & 1 == 1)
                    .map(|j| v[j])
                    .collect();
                if terms.is_empty() {
                    b_.constant(false)
                } else {
                    b_.xor_reduce(&terms)
                }
            })
            .collect()
    };
    let a2l = sq_lam(b, ahi);
    let ab = gf16_mul_circ(b, ahi, blo);
    let b2 = sq(b, blo);
    let t = b.xor_bus(&a2l, &ab);
    let delta = b.xor_bus(&t, &b2);
    let dinv = gf16_inv_circ(b, &delta);
    let hi = gf16_mul_circ(b, ahi, &dinv);
    let apb = b.xor_bus(ahi, blo);
    let lo = gf16_mul_circ(b, &apb, &dinv);
    [lo, hi].concat()
}

/// Builds one AES S-box over an 8-bit bus: 36 ANDs.
pub(crate) fn sbox_circ(b: &mut CircuitBuilder, maps: &SboxMapsOpaque, x: &[WireId]) -> Bus {
    let m = &maps.0;
    let t = apply_matrix(b, &m.to_tower, x);
    let sq16 = BitMatrix {
        cols: core::array::from_fn(|j| if j < 4 { gf16_sq(1 << j) } else { 0 }),
    };
    let inv = gf256t_inv_circ(b, &t, m.lam, &sq16);
    let lin = apply_matrix(b, &m.from_tower_affine, &inv);
    // Final affine constant 0x63 (free bit flips).
    lin.iter()
        .enumerate()
        .map(|(i, &w)| if (0x63 >> i) & 1 == 1 { b.not(w) } else { w })
        .collect()
}

/// Opaque handle so callers can precompute the basis-change matrices once.
pub(crate) struct SboxMapsOpaque(SboxMaps);

pub(crate) fn precompute_sbox_maps() -> SboxMapsOpaque {
    SboxMapsOpaque(sbox_maps())
}

/// `xtime` on a byte bus (free).
fn xtime_circ(b: &mut CircuitBuilder, x: &[WireId]) -> Bus {
    let zero = b.constant(false);
    let mut out = vec![zero; 8];
    out[0] = x[7];
    out[1] = b.xor(x[0], x[7]);
    out[2] = x[1];
    out[3] = b.xor(x[2], x[7]);
    out[4] = b.xor(x[3], x[7]);
    out[5] = x[4];
    out[6] = x[5];
    out[7] = x[6];
    out
}

/// Builds the sequential AES-128 circuit: Alice holds the key, Bob the
/// plaintext; 10 cycles; output is the ciphertext.
pub fn aes128(key: [u8; 16], pt: [u8; 16]) -> BenchCircuit {
    let maps = precompute_sbox_maps();
    let mut bld = CircuitBuilder::new("aes_128");

    // State and key registers, one byte-bus each.
    let state: Vec<Bus> = (0..16)
        .map(|i| bld.dff_bus(8, |j| DffInit::Bob((8 * i + j) as u32)))
        .collect();
    let keyr: Vec<Bus> = (0..16)
        .map(|i| bld.dff_bus(8, |j| DffInit::Alice((8 * i + j) as u32)))
        .collect();

    // Public round counter 0..9.
    let ctr = bld.dff_bus(4, |_| DffInit::Const(false));
    let (ctr_next, _) = bld.inc(&ctr);
    bld.connect_dff_bus(&ctr, &ctr_next);
    let is_first = bld.eq_const(&ctr, 0);
    let is_last = bld.eq_const(&ctr, 9);

    // Round input: on the first cycle fold in the initial AddRoundKey.
    let t: Vec<Bus> = (0..16)
        .map(|i| {
            let x = bld.xor_bus(&state[i], &keyr[i]);
            bld.mux_bus(is_first, &x, &state[i])
        })
        .collect();

    // SubBytes.
    let sb: Vec<Bus> = t
        .iter()
        .map(|byte| sbox_circ(&mut bld, &maps, byte))
        .collect();
    // ShiftRows: new[4c+r] = old[4((c+r)%4)+r].
    let sr: Vec<Bus> = (0..16)
        .map(|i| {
            let (c, r) = (i / 4, i % 4);
            sb[4 * ((c + r) % 4) + r].clone()
        })
        .collect();
    // MixColumns (linear).
    let mc: Vec<Bus> = (0..4)
        .flat_map(|c| {
            let col: Vec<&Bus> = (0..4).map(|r| &sr[4 * c + r]).collect();
            let mut out = Vec::with_capacity(4);
            for r in 0..4 {
                let a2 = xtime_circ(&mut bld, col[r]);
                let nxt = col[(r + 1) % 4].clone();
                let a3x = xtime_circ(&mut bld, &nxt);
                let a3 = bld.xor_bus(&a3x, &nxt);
                let mut acc = bld.xor_bus(&a2, &a3);
                acc = bld.xor_bus(&acc, col[(r + 2) % 4]);
                acc = bld.xor_bus(&acc, col[(r + 3) % 4]);
                out.push(acc);
            }
            out
        })
        .collect();
    // Final round skips MixColumns (public selector → free at run time).
    let pre: Vec<Bus> = (0..16)
        .map(|i| bld.mux_bus(is_last, &sr[i], &mc[i]))
        .collect();

    // Key schedule: next_key = ks(key, rcon(ctr)).
    let rcon_vals: [u8; 10] = {
        let mut v = [0u8; 10];
        let mut x = 1u8;
        for e in v.iter_mut() {
            *e = x;
            x = gf256a_mul(x, 2);
        }
        v
    };
    // 8-bit mux over 16 slots addressed by the public counter.
    let rcon: Bus = (0..8)
        .map(|bit| {
            let entries: Vec<WireId> = (0..16)
                .map(|r| bld.constant(r < 10 && (rcon_vals[r] >> bit) & 1 == 1))
                .collect();
            let mut layer = entries;
            for &cb in &ctr {
                let mut nxt = Vec::with_capacity(layer.len() / 2);
                for pair in layer.chunks(2) {
                    nxt.push(bld.mux(cb, pair[1], pair[0]));
                }
                layer = nxt;
            }
            layer[0]
        })
        .collect();

    // Key bytes are column-major words w0..w3; w_c = key[4c..4c+4].
    let rotsub: Vec<Bus> = (0..4)
        .map(|r| {
            // RotWord then SubWord on w3.
            let byte = keyr[12 + ((r + 1) % 4)].clone();
            sbox_circ(&mut bld, &maps, &byte)
        })
        .collect();
    let mut next_key: Vec<Bus> = Vec::with_capacity(16);
    for r in 0..4 {
        let mut b0 = bld.xor_bus(&keyr[r], &rotsub[r]);
        if r == 0 {
            b0 = bld.xor_bus(&b0, &rcon);
        }
        next_key.push(b0);
    }
    for c in 1..4 {
        for r in 0..4 {
            let prev = next_key[4 * (c - 1) + r].clone();
            next_key.push(bld.xor_bus(&keyr[4 * c + r], &prev));
        }
    }

    // Next state = pre ⊕ next_key.
    for i in 0..16 {
        let ns = bld.xor_bus(&pre[i], &next_key[i]);
        bld.connect_dff_bus(&state[i], &ns);
        bld.connect_dff_bus(&keyr[i], &next_key[i]);
    }
    for byte in &state {
        bld.outputs(byte);
    }
    let circuit = bld.build();

    // Canonical inputs + expected ciphertext from the reference model.
    let expected_ct = reference_encrypt(key, pt);
    let to_bits = |bytes: &[u8; 16]| -> Vec<bool> {
        bytes
            .iter()
            .flat_map(|&b| (0..8).map(move |i| (b >> i) & 1 == 1))
            .collect()
    };

    BenchCircuit {
        circuit,
        cycles: 10,
        alice: PartyData::from_init(to_bits(&key)),
        bob: PartyData::from_init(to_bits(&pt)),
        public: PartyData::default(),
        expected: to_bits(&expected_ct),
    }
}

/// Minimal cleartext AES-128 used only to compute expected outputs.
fn reference_encrypt(key: [u8; 16], pt: [u8; 16]) -> [u8; 16] {
    // Key expansion.
    let mut w = [[0u8; 4]; 44];
    for i in 0..4 {
        w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
    }
    let rcon_vals: [u8; 10] = {
        let mut v = [0u8; 10];
        let mut x = 1u8;
        for e in v.iter_mut() {
            *e = x;
            x = gf256a_mul(x, 2);
        }
        v
    };
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = aes_sbox(*b);
            }
            t[0] ^= rcon_vals[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ t[j];
        }
    }
    let mut s = pt;
    let add_rk = |s: &mut [u8; 16], r: usize| {
        for c in 0..4 {
            for j in 0..4 {
                s[4 * c + j] ^= w[4 * r + c][j];
            }
        }
    };
    add_rk(&mut s, 0);
    for round in 1..=10 {
        for b in s.iter_mut() {
            *b = aes_sbox(*b);
        }
        let orig = s;
        for r in 1..4 {
            for c in 0..4 {
                s[4 * c + r] = orig[4 * ((c + r) % 4) + r];
            }
        }
        if round != 10 {
            for c in 0..4 {
                let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
                let x2 = |v: u8| gf256a_mul(v, 2);
                let x3 = |v: u8| gf256a_mul(v, 3);
                s[4 * c] = x2(col[0]) ^ x3(col[1]) ^ col[2] ^ col[3];
                s[4 * c + 1] = col[0] ^ x2(col[1]) ^ x3(col[2]) ^ col[3];
                s[4 * c + 2] = col[0] ^ col[1] ^ x2(col[2]) ^ x3(col[3]);
                s[4 * c + 3] = x3(col[0]) ^ col[1] ^ col[2] ^ x2(col[3]);
            }
        }
        add_rk(&mut s, round);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn tower_iso_is_multiplicative() {
        let maps = sbox_maps();
        let mut x = 1u8;
        for _ in 0..40 {
            x = x.wrapping_mul(31).wrapping_add(17);
            let y = x.rotate_left(3) ^ 0x5a;
            let lhs = maps.to_tower.apply(gf256a_mul(x, y));
            let rhs = gf256t_mul(maps.to_tower.apply(x), maps.to_tower.apply(y), maps.lam);
            assert_eq!(lhs, rhs, "x={x:02x} y={y:02x}");
        }
    }

    #[test]
    fn gf16_inverse_table_check() {
        for x in 1u8..16 {
            // Brute-force inverse.
            let inv = (1..16).find(|&y| gf16_mul(x, y) == 1).expect("exists");
            // δ-formula inverse used by the circuit.
            let lam_free_inv = {
                let (c, d) = (x >> 2, x & 3);
                let delta = gf4_mul(N4, gf4_sq(c)) ^ gf4_mul(c, d) ^ gf4_sq(d);
                let dinv = gf4_sq(delta);
                ((gf4_mul(c, dinv)) << 2) | gf4_mul(c ^ d, dinv)
            };
            assert_eq!(inv, lam_free_inv, "x={x}");
        }
    }

    #[test]
    fn sbox_circuit_matches_table() {
        let maps = precompute_sbox_maps();
        let mut b = CircuitBuilder::new("sbox");
        let x = b.inputs(Role::Alice, 8);
        let y = sbox_circ(&mut b, &maps, &x);
        b.outputs(&y);
        let c = b.build();
        assert_eq!(c.non_xor_count(), 36);
        let sim = Simulator::new(&c);
        for v in 0..=255u8 {
            let bits: Vec<bool> = (0..8).map(|i| (v >> i) & 1 == 1).collect();
            let out = sim.run_comb(&bits, &[], &[]);
            let got: u8 = out
                .iter()
                .enumerate()
                .fold(0, |acc, (i, &b)| acc | ((b as u8) << i));
            assert_eq!(got, aes_sbox(v), "S-box mismatch at {v:#04x}");
        }
    }

    #[test]
    fn reference_encrypt_fips197() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        assert_eq!(
            reference_encrypt(key, pt),
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    #[test]
    fn per_cycle_sbox_cost() {
        let bc = aes128([0; 16], [0; 16]);
        // 20 S-boxes × 36 ANDs = 720, plus public-selector muxes.
        let non_xor = bc.circuit.non_xor_count();
        assert!(non_xor >= 720, "{non_xor}");
        assert!(non_xor <= 1300, "{non_xor}");
    }
}
