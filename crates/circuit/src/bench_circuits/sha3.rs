//! SHA3-256 as a sequential circuit: 24 Keccak-f\[1600\] rounds, one per
//! clock cycle.
//!
//! Per-cycle garbled cost is the χ step's 1600 ANDs; θ/ρ/π/ι are linear.
//! The round-constant lookup and round counter are public, so SkipGate
//! strips them and the run costs 24 × 1600 = 38,400 non-XOR gates — the
//! paper's Table 1/2 figure.
//!
//! Round constants and rotation offsets are *derived* (LFSR and the
//! (t+1)(t+2)/2 walk from the Keccak reference) rather than transcribed;
//! a SHA3-256 known-answer test validates both the reference model and
//! the circuit.

use super::BenchCircuit;
use crate::ir::DffInit;
use crate::sim::PartyData;
use crate::{Bus, CircuitBuilder, WireId};

/// Keccak rate in bits for SHA3-256.
pub const RATE_BITS: usize = 1088;
const ROUNDS: usize = 24;

/// The Keccak LFSR bit rc(t) (reference specification).
fn rc_bit(t: usize) -> bool {
    let mut r: u16 = 1;
    for _ in 0..t {
        r <<= 1;
        if r & 0x100 != 0 {
            r ^= 0x171; // x^8 + x^6 + x^5 + x^4 + 1
        }
    }
    r & 1 == 1
}

/// The 24 round constants, derived from the LFSR.
pub fn round_constants() -> [u64; ROUNDS] {
    let mut rcs = [0u64; ROUNDS];
    for (i, rc) in rcs.iter_mut().enumerate() {
        for j in 0..7 {
            if rc_bit(7 * i + j) {
                *rc |= 1 << ((1usize << j) - 1);
            }
        }
    }
    rcs
}

/// ρ rotation offsets, derived from the (t+1)(t+2)/2 walk.
fn rho_offsets() -> [[u32; 5]; 5] {
    let mut r = [[0u32; 5]; 5];
    let (mut x, mut y) = (1usize, 0usize);
    for t in 0..24 {
        r[x][y] = (((t + 1) * (t + 2)) / 2 % 64) as u32;
        let nx = y;
        let ny = (2 * x + 3 * y) % 5;
        x = nx;
        y = ny;
    }
    r
}

/// Reference (cleartext) Keccak-f[1600] permutation on 25 lanes.
pub fn keccak_f1600(state: &mut [u64; 25]) {
    let rcs = round_constants();
    let rho = rho_offsets();
    for &rc in &rcs {
        // θ
        let mut c = [0u64; 5];
        for x in 0..5 {
            c[x] = (0..5).fold(0, |acc, y| acc ^ state[x + 5 * y]);
        }
        let mut d = [0u64; 5];
        for x in 0..5 {
            d[x] = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
        }
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] ^= d[x];
            }
        }
        // ρ and π
        let mut b = [0u64; 25];
        for x in 0..5 {
            for y in 0..5 {
                b[y + 5 * ((2 * x + 3 * y) % 5)] = state[x + 5 * y].rotate_left(rho[x][y]);
            }
        }
        // χ
        for x in 0..5 {
            for y in 0..5 {
                state[x + 5 * y] =
                    b[x + 5 * y] ^ ((!b[(x + 1) % 5 + 5 * y]) & b[(x + 2) % 5 + 5 * y]);
            }
        }
        // ι
        state[0] ^= rc;
    }
}

/// Reference SHA3-256 of a byte message (single-block messages only,
/// i.e. `msg.len() <= 135`).
pub fn sha3_256_digest(msg: &[u8]) -> [u8; 32] {
    let state = padded_state(msg);
    let mut lanes = [0u64; 25];
    for (i, lane) in lanes.iter_mut().enumerate() {
        for j in 0..8 {
            *lane |= (state[8 * i + j] as u64) << (8 * j);
        }
    }
    keccak_f1600(&mut lanes);
    let mut out = [0u8; 32];
    for i in 0..4 {
        out[8 * i..8 * i + 8].copy_from_slice(&lanes[i].to_le_bytes());
    }
    out
}

/// SHA3 pads `msg` into a full 200-byte Keccak state image.
fn padded_state(msg: &[u8]) -> [u8; 200] {
    assert!(msg.len() < RATE_BITS / 8, "single-block messages only");
    let mut st = [0u8; 200];
    st[..msg.len()].copy_from_slice(msg);
    st[msg.len()] ^= 0x06; // SHA3 domain separation
    st[RATE_BITS / 8 - 1] ^= 0x80;
    st
}

/// Builds one Keccak round as combinational logic over 1600 wires.
fn round_circuit(b: &mut CircuitBuilder, state: &[Bus; 25], rc_bits: &[WireId]) -> Vec<Bus> {
    let rho = rho_offsets();
    // θ
    let mut c: Vec<Bus> = Vec::with_capacity(5);
    for x in 0..5 {
        let mut col = state[x].clone();
        for y in 1..5 {
            col = b.xor_bus(&col, &state[x + 5 * y]);
        }
        c.push(col);
    }
    let mut d: Vec<Bus> = Vec::with_capacity(5);
    for x in 0..5 {
        let rot = rot_left(&c[(x + 1) % 5], 1);
        d.push(b.xor_bus(&c[(x + 4) % 5], &rot));
    }
    let mut after_theta: Vec<Bus> = Vec::with_capacity(25);
    for y in 0..5 {
        for x in 0..5 {
            after_theta.push(b.xor_bus(&state[x + 5 * y], &d[x]));
        }
    }
    // Reindex: after_theta is stored y-major above; fix to x + 5y order.
    let at = |x: usize, y: usize| &after_theta[y * 5 + x];
    // ρ and π (pure rewiring)
    let mut bb: Vec<Bus> = vec![Vec::new(); 25];
    for x in 0..5 {
        for y in 0..5 {
            bb[y + 5 * ((2 * x + 3 * y) % 5)] = rot_left(at(x, y), rho[x][y] as usize);
        }
    }
    // χ: 64 ANDs per lane
    let mut out: Vec<Bus> = Vec::with_capacity(25);
    for y in 0..5 {
        for x in 0..5 {
            let a = &bb[x + 5 * y];
            let b1 = bb[(x + 1) % 5 + 5 * y].clone();
            let b2 = bb[(x + 2) % 5 + 5 * y].clone();
            let nb1 = b.not_bus(&b1);
            let t = b.and_bus(&nb1, &b2);
            out.push(b.xor_bus(a, &t));
        }
    }
    // Reorder to x + 5y indexing and apply ι to lane 0.
    let mut result: Vec<Bus> = vec![Vec::new(); 25];
    for y in 0..5 {
        for x in 0..5 {
            result[x + 5 * y] = out[y * 5 + x].clone();
        }
    }
    for (i, &rcb) in rc_bits.iter().enumerate() {
        result[0][i] = b.xor(result[0][i], rcb);
    }
    result
}

fn rot_left(bus: &Bus, k: usize) -> Bus {
    let n = bus.len();
    (0..n).map(|i| bus[(i + n - k % n) % n]).collect()
}

/// Builds the sequential SHA3-256 circuit for a single-block message.
/// Alice supplies the full padded 1600-bit state as her private input.
pub fn sha3_256(msg: &[u8]) -> BenchCircuit {
    let mut bld = CircuitBuilder::new("sha3_256");
    // 1600 state flip-flops initialised from Alice's padded message.
    let state_bits = bld.dff_bus(1600, |i| DffInit::Alice(i as u32));
    let state: [Bus; 25] = core::array::from_fn(|l| state_bits[64 * l..64 * (l + 1)].to_vec());

    // Public round counter and round-constant lookup. Only the 7 bit
    // positions 2^j - 1 of the constant are ever non-zero.
    let ctr = bld.dff_bus(5, |_| DffInit::Const(false));
    let (ctr_next, _) = bld.inc(&ctr);
    bld.connect_dff_bus(&ctr, &ctr_next);
    let rcs = round_constants();
    let zero = bld.constant(false);
    let mut rc_bits = vec![zero; 64];
    for j in 0..7 {
        let pos = (1usize << j) - 1;
        // Mux tree over the 24 rounds (padded to 32) selected by the
        // public counter.
        let entries: Vec<WireId> = (0..32)
            .map(|r| bld.constant(r < ROUNDS && (rcs[r] >> pos) & 1 == 1))
            .collect();
        let mut layer = entries;
        for bit in &ctr {
            let mut nxt = Vec::with_capacity(layer.len() / 2);
            for pair in layer.chunks(2) {
                nxt.push(bld.mux(*bit, pair[1], pair[0]));
            }
            layer = nxt;
        }
        rc_bits[pos] = layer[0];
    }

    let next = round_circuit(&mut bld, &state, &rc_bits);
    let next_flat: Bus = next.into_iter().flatten().collect();
    bld.connect_dff_bus(&state_bits, &next_flat);
    bld.outputs(&state_bits[..256]);
    let circuit = bld.build();

    // Canonical inputs and expectation.
    let st = padded_state(msg);
    let alice_init: Vec<bool> = st.iter().flat_map(byte_bits).collect();
    let digest = sha3_256_digest(msg);
    let expected: Vec<bool> = digest.iter().flat_map(byte_bits).collect();

    BenchCircuit {
        circuit,
        cycles: ROUNDS,
        alice: PartyData::from_init(alice_init),
        bob: PartyData::default(),
        public: PartyData::default(),
        expected,
    }
}

fn byte_bits(b: &u8) -> impl Iterator<Item = bool> + '_ {
    (0..8).map(move |i| (b >> i) & 1 == 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_constants_known_values() {
        let rcs = round_constants();
        assert_eq!(rcs[0], 0x0000000000000001);
        assert_eq!(rcs[1], 0x0000000000008082);
        assert_eq!(rcs[23], 0x8000000080008008);
    }

    #[test]
    fn rho_offsets_known_values() {
        let r = rho_offsets();
        assert_eq!(r[0][0], 0);
        assert_eq!(r[1][0], 1);
        assert_eq!(r[2][1], 6);
        assert_eq!(r[4][4], 14);
    }

    #[test]
    fn sha3_256_known_answer() {
        // NIST test vector for SHA3-256("abc").
        let d = sha3_256_digest(b"abc");
        let hex: String = d.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            "3a985da74fe225b2045c172d6bd390bd855f086e3e9d525b46bfe24511431532"
        );
    }

    #[test]
    fn sha3_256_empty_message() {
        let d = sha3_256_digest(b"");
        let hex: String = d.iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(
            hex,
            "a7ffc6f8bf1ed76651c14756a061d662f580ff4de43b49fa82d80a4b80f8434a"
        );
    }

    #[test]
    fn chi_dominates_gate_count() {
        let bc = sha3_256(b"x");
        // 1600 χ ANDs + public controller muxes per cycle.
        let per_cycle = bc.circuit.non_xor_count();
        assert!(per_cycle >= 1600, "χ must contribute 1600 ANDs");
        assert!(
            per_cycle < 1900,
            "controller should stay small: {per_cycle}"
        );
    }
}
