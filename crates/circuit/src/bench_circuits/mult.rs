//! Combinational multiplication (TinyGarble's "Mult" benchmark).
//!
//! A full schoolbook `n×n → 2n` array multiplier evaluated in one cycle;
//! 2016 ANDs for n = 32, the paper's Table 1/2 figure.

use super::BenchCircuit;
use crate::ir::Role;
use crate::sim::PartyData;
use crate::words::u64_to_bits;
use crate::CircuitBuilder;

/// Builds the `n`-bit multiplier with canonical inputs (`a * b`, full
/// double-width product).
pub fn mult(n: usize, a: u64, b: u64) -> BenchCircuit {
    let mut bld = CircuitBuilder::new(format!("mult_{n}"));
    let ai = bld.inputs(Role::Alice, n);
    let bi = bld.inputs(Role::Bob, n);
    let p = bld.mul_full(&ai, &bi);
    bld.outputs(&p);
    let circuit = bld.build();

    let prod = (a as u128) * (b as u128);
    let expected = (0..2 * n).map(|i| (prod >> i) & 1 == 1).collect();

    BenchCircuit {
        circuit,
        cycles: 1,
        alice: PartyData::from_stream(vec![u64_to_bits(a, n)]),
        bob: PartyData::from_stream(vec![u64_to_bits(b, n)]),
        public: PartyData::default(),
        expected,
    }
}
