//! Bit-serial addition (TinyGarble's "Sum" benchmark).
//!
//! A single 1-bit full adder with a carry flip-flop runs for `n` cycles,
//! consuming one bit of each operand and emitting one sum bit per cycle.
//! Per-cycle cost: exactly 1 AND — so "Sum n" costs `n` garbled tables
//! without SkipGate and `n-1` with it (the final carry is dead), matching
//! Table 1 of the paper.

use super::BenchCircuit;
use crate::ir::{DffInit, OutputMode, Role};
use crate::sim::PartyData;
use crate::CircuitBuilder;

/// Builds the `n`-bit bit-serial adder with canonical inputs `a + b`.
pub fn sum(n: usize, a: u64, b: u64) -> BenchCircuit {
    let mut bld = CircuitBuilder::new(format!("sum_{n}"));
    let ai = bld.input(Role::Alice);
    let bi = bld.input(Role::Bob);
    let carry = bld.dff(DffInit::Const(false));
    let (s, cout) = bld.full_adder(ai, bi, carry);
    bld.connect_dff(carry, cout);
    bld.output(s);
    bld.set_output_mode(OutputMode::PerCycle);
    let circuit = bld.build();

    let alice = PartyData::from_stream((0..n).map(|i| vec![bit(a, i)]).collect());
    let bob = PartyData::from_stream((0..n).map(|i| vec![bit(b, i)]).collect());
    let total = (a as u128) + (b as u128);
    let expected = (0..n).map(|i| i < 128 && (total >> i) & 1 == 1).collect();

    BenchCircuit {
        circuit,
        cycles: n,
        alice,
        bob,
        public: PartyData::default(),
        expected,
    }
}

fn bit(v: u64, i: usize) -> bool {
    if i < 64 {
        (v >> i) & 1 == 1
    } else {
        false
    }
}
