//! Circuit statistics: the paper's cost metric (non-XOR gate counts) and
//! structural summaries used by the table harness.

use core::fmt;
use std::collections::BTreeMap;

use crate::ir::{Circuit, Role};
use crate::schedule::LayerSchedule;

/// Structural summary of a [`Circuit`].
#[derive(Clone, Debug)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Total wires.
    pub wires: usize,
    /// Total combinational gates.
    pub gates: usize,
    /// Nonlinear (garbled) gates per cycle.
    pub non_xor: u64,
    /// Linear (free) gates per cycle.
    pub xor: u64,
    /// Flip-flop count.
    pub dffs: usize,
    /// Gate count per mnemonic.
    pub by_op: BTreeMap<&'static str, usize>,
    /// Primary input count per role: (Alice, Bob, Public).
    pub inputs: (usize, usize, usize),
    /// Output wire count.
    pub outputs: usize,
    /// ASAP topological depth (levels per cycle).
    pub levels: usize,
    /// Widest topological level, in nonlinear gates — the largest hash
    /// batch a layer-scheduled cycle can form.
    pub widest_nonlinear_level: usize,
}

impl CircuitStats {
    /// Computes statistics for `c`.
    pub fn of(c: &Circuit) -> Self {
        let mut by_op = BTreeMap::new();
        for g in c.gates() {
            *by_op.entry(g.op.name()).or_insert(0) += 1;
        }
        let sched = LayerSchedule::of(c);
        Self {
            name: c.name().to_string(),
            wires: c.wire_count(),
            gates: c.gates().len(),
            non_xor: c.non_xor_count(),
            xor: c.xor_count(),
            dffs: c.dffs().len(),
            by_op,
            inputs: (
                c.inputs_of(Role::Alice).len(),
                c.inputs_of(Role::Bob).len(),
                c.inputs_of(Role::Public).len(),
            ),
            outputs: c.outputs().len(),
            levels: sched.levels(),
            widest_nonlinear_level: sched.max_nonlinear_width() as usize,
        }
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} wires, {} gates ({} non-XOR, {} free), {} DFFs, \
             {} levels (widest non-XOR level {})",
            self.name,
            self.wires,
            self.gates,
            self.non_xor,
            self.xor,
            self.dffs,
            self.levels,
            self.widest_nonlinear_level
        )?;
        write!(f, "  ops:")?;
        for (op, n) in &self.by_op {
            write!(f, " {op}={n}")?;
        }
        Ok(())
    }
}

/// Static fanout of every wire: how many gate inputs plus circuit outputs
/// plus flip-flop data inputs consume it. This is the `label_fanout`
/// initialisation value of the SkipGate algorithm (§3.2).
pub fn wire_fanouts(c: &Circuit) -> Vec<u32> {
    let mut fan = vec![0u32; c.wire_count()];
    for g in c.gates() {
        fan[g.a.index()] += 1;
        fan[g.b.index()] += 1;
    }
    for d in c.dffs() {
        fan[d.d.index()] += 1;
    }
    for w in c.outputs() {
        fan[w.index()] += 1;
    }
    fan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, Role};

    #[test]
    fn stats_counts() {
        let mut b = CircuitBuilder::new("t");
        let x = b.inputs(Role::Alice, 4);
        let y = b.inputs(Role::Bob, 4);
        let (s, _) = b.add(&x, &y);
        b.outputs(&s);
        let c = b.build();
        let st = CircuitStats::of(&c);
        assert_eq!(st.non_xor, 4);
        assert_eq!(st.inputs, (4, 4, 0));
        assert_eq!(st.outputs, 4);
        assert!(st.levels >= 1, "a gate-bearing circuit has levels");
        assert!(st.widest_nonlinear_level >= 1);
        assert!(st.to_string().contains("non-XOR"));
        assert!(st.to_string().contains("levels"));
    }

    #[test]
    fn fanout_upper_bound_from_paper() {
        // §3.4: F = Σ fanout ≤ 2n - m + q.
        let mut b = CircuitBuilder::new("t");
        let x = b.inputs(Role::Alice, 8);
        let y = b.inputs(Role::Bob, 8);
        let (s, _) = b.add(&x, &y);
        b.outputs(&s);
        let c = b.build();
        let total: u32 = wire_fanouts(&c).iter().sum();
        let n = c.gates().len() as u32;
        let m = c.inputs().len() as u32 + c.consts().len() as u32;
        let q = c.outputs().len() as u32;
        assert!(total <= 2 * n + q, "total={total} n={n} m={m} q={q}");
    }
}
