//! Random circuit generation for differential testing.
//!
//! Every garbling engine in the workspace is validated by comparing its
//! outputs against [`crate::Simulator`] on randomly generated sequential
//! circuits. The generator lives here so all engine crates share it.

use crate::ir::{DffInit, Op, OutputMode, Role};
use crate::sim::PartyData;
use crate::{Circuit, CircuitBuilder, WireId};

/// A tiny deterministic RNG (xorshift64*) so this module needs no
/// external dependencies.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator (seed 0 is remapped).
    pub fn new(seed: u64) -> Self {
        TestRng(seed.max(1))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform value in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform bool.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Shape parameters for [`random_circuit`].
#[derive(Clone, Copy, Debug)]
pub struct RandomCircuitParams {
    /// Primary inputs per role (Alice, Bob, Public).
    pub inputs: (usize, usize, usize),
    /// Number of flip-flops.
    pub dffs: usize,
    /// Number of combinational gates.
    pub gates: usize,
    /// Number of output wires.
    pub outputs: usize,
    /// Output schedule.
    pub output_mode: OutputMode,
}

impl Default for RandomCircuitParams {
    fn default() -> Self {
        Self {
            inputs: (3, 3, 2),
            dffs: 4,
            gates: 40,
            outputs: 5,
            output_mode: OutputMode::PerCycle,
        }
    }
}

/// All gate ops a synthesiser can emit (no constant-valued gates).
const OPS: [Op; 14] = [
    Op::AND,
    Op::OR,
    Op::XOR,
    Op::XNOR,
    Op::NAND,
    Op::NOR,
    Op::ANDNOT,
    Op::NOTAND,
    Op::BUF_A,
    Op::NOT_A,
    Op::BUF_B,
    Op::NOT_B,
    Op::from_table(0b1011),
    Op::from_table(0b1101),
];

/// Generates a random (but always well-formed) sequential circuit.
pub fn random_circuit(rng: &mut TestRng, p: RandomCircuitParams) -> Circuit {
    let mut b = CircuitBuilder::new(format!("random_{}", rng.next_u64() % 10_000));
    let mut pool: Vec<WireId> = Vec::new();

    pool.extend(b.inputs(Role::Alice, p.inputs.0));
    pool.extend(b.inputs(Role::Bob, p.inputs.1));
    pool.extend(b.inputs(Role::Public, p.inputs.2));
    pool.push(b.constant(false));
    pool.push(b.constant(true));

    let mut init_counts = [0u32; 3];
    let dffs: Vec<WireId> = (0..p.dffs)
        .map(|_| {
            let init = match rng.below(4) {
                0 => DffInit::Const(rng.bool()),
                1 => {
                    init_counts[0] += 1;
                    DffInit::Alice(init_counts[0] - 1)
                }
                2 => {
                    init_counts[1] += 1;
                    DffInit::Bob(init_counts[1] - 1)
                }
                _ => {
                    init_counts[2] += 1;
                    DffInit::Public(init_counts[2] - 1)
                }
            };
            let q = b.dff(init);
            pool.push(q);
            q
        })
        .collect();

    for _ in 0..p.gates {
        let op = OPS[rng.below(OPS.len())];
        let a = pool[rng.below(pool.len())];
        let bb = pool[rng.below(pool.len())];
        pool.push(b.gate(op, a, bb));
    }

    // Feed flip-flops from late wires to exercise state.
    for &q in &dffs {
        let d = pool[pool.len() - 1 - rng.below(pool.len() / 2)];
        b.connect_dff(q, d);
    }
    for _ in 0..p.outputs {
        b.output(pool[rng.below(pool.len())]);
    }
    b.set_output_mode(p.output_mode);
    b.build()
}

/// Random runtime data matching `circuit` for `cycles` cycles.
pub fn random_inputs(
    rng: &mut TestRng,
    circuit: &Circuit,
    cycles: usize,
) -> (PartyData, PartyData, PartyData) {
    let mk = |rng: &mut TestRng, role: Role, c: &Circuit| {
        let n_stream = c.inputs_of(role).len();
        PartyData {
            init: (0..c.init_bits_of(role)).map(|_| rng.bool()).collect(),
            stream: (0..cycles)
                .map(|_| (0..n_stream).map(|_| rng.bool()).collect())
                .collect(),
        }
    };
    (
        mk(rng, Role::Alice, circuit),
        mk(rng, Role::Bob, circuit),
        mk(rng, Role::Public, circuit),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn random_circuits_simulate_without_panic() {
        let mut rng = TestRng::new(42);
        for _ in 0..20 {
            let c = random_circuit(&mut rng, RandomCircuitParams::default());
            let (a, b, p) = random_inputs(&mut rng, &c, 4);
            let res = Simulator::new(&c).run(&a, &b, &p, 4);
            assert_eq!(res.cycles_run, 4);
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut r1 = TestRng::new(7);
        let mut r2 = TestRng::new(7);
        let c1 = random_circuit(&mut r1, RandomCircuitParams::default());
        let c2 = random_circuit(&mut r2, RandomCircuitParams::default());
        assert_eq!(c1.gates().len(), c2.gates().len());
        assert_eq!(c1.non_xor_count(), c2.non_xor_count());
    }
}
