//! Precomputed topological layer schedules for the garbling hot loop.
//!
//! The wavefront batchers in `arm2gc-garble` discover parallelism *on
//! the fly* inside the netlist-order walk of one cycle: a wavefront
//! ends at the first gate that consumes a label the current batch still
//! owes. A [`LayerSchedule`] instead levels the circuit once — ASAP
//! (as-soon-as-possible) topological levels — and is reused for every
//! clock cycle: ARM2GC garbles the *same* CPU circuit every cycle, so
//! the cost of scheduling amortises to zero while every level's
//! nonlinear gates can hash through the wide AES core in a single
//! batch, however the netlist interleaves its dependency chains.
//!
//! The schedule only reorders *computation*. Garbled tables still go on
//! the wire in exact netlist gate order ([`LayerSchedule::nonlinear_ordinal`]
//! gives each gate its emission slot), so a layer-scheduled run is
//! byte-identical to a sequential or wavefront run — the
//! strategy-equivalence suite in `arm2gc-bench` pins exactly that.

use crate::ir::Circuit;

/// How an engine orders the label computations of one clock cycle.
///
/// Both modes produce byte-identical protocol transcripts (tables are
/// always emitted in netlist gate order); they differ only in how many
/// independent nonlinear gates reach the batched hash at once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Walk gates in netlist order, batching maximal ready runs on the
    /// fly (the wavefront scheduler).
    #[default]
    Netlist,
    /// Execute a precomputed [`LayerSchedule`] level by level, hashing
    /// each level's nonlinear gates in one batch.
    Layered,
}

/// A precomputed ASAP topological level schedule for one [`Circuit`].
///
/// Level `L` contains exactly the gates whose inputs are all produced
/// by levels `< L` (primary inputs, constants and flip-flop outputs are
/// level-0 sources), so all gates within one level are mutually
/// independent and may be computed in any order — including as one wide
/// hash batch. Within a level, gates are stored linear-first (then
/// nonlinear), each group in ascending netlist order.
#[derive(Clone, Debug)]
pub struct LayerSchedule {
    /// Gate indices, level-major.
    order: Vec<u32>,
    /// `order[bounds[l]..bounds[l + 1]]` is level `l`.
    bounds: Vec<u32>,
    /// Start of the nonlinear group inside each level's slice
    /// (relative to the level start).
    split: Vec<u32>,
    /// ASAP level of every gate (netlist-indexed).
    gate_level: Vec<u32>,
    /// Level of the value carried by every wire: 0 for sources,
    /// `gate_level + 1` for gate outputs.
    wire_level: Vec<u32>,
    /// Emission slot of every gate: its index among nonlinear gates in
    /// netlist order (`u32::MAX` for linear gates).
    ordinal: Vec<u32>,
    /// Nonlinear gates per cycle.
    non_xor: u32,
    /// Widest level, in gates.
    max_width: u32,
    /// Widest level, in nonlinear gates (= the largest possible hash
    /// batch a layered cycle can form).
    max_nonlinear_width: u32,
}

impl LayerSchedule {
    /// Levels `circuit` (one linear pass over the netlist).
    pub fn of(circuit: &Circuit) -> Self {
        let gates = circuit.gates();
        let mut wire_level = vec![0u32; circuit.wire_count()];
        let mut gate_level = vec![0u32; gates.len()];
        let mut ordinal = vec![u32::MAX; gates.len()];
        let mut non_xor = 0u32;
        let mut levels = 0u32;
        // Netlist order is topological, so one forward pass settles
        // every level.
        for (gi, g) in gates.iter().enumerate() {
            let l = wire_level[g.a.index()].max(wire_level[g.b.index()]);
            gate_level[gi] = l;
            wire_level[g.out.index()] = l + 1;
            levels = levels.max(l + 1);
            if !g.op.is_linear() {
                ordinal[gi] = non_xor;
                non_xor += 1;
            }
        }

        // Counting sort into level buckets: linear group first, then
        // nonlinear, both in ascending netlist order.
        let nl = levels as usize;
        let mut linear_count = vec![0u32; nl];
        let mut nonlinear_count = vec![0u32; nl];
        for (gi, g) in gates.iter().enumerate() {
            if g.op.is_linear() {
                linear_count[gate_level[gi] as usize] += 1;
            } else {
                nonlinear_count[gate_level[gi] as usize] += 1;
            }
        }
        let mut bounds = Vec::with_capacity(nl + 1);
        let mut split = Vec::with_capacity(nl);
        let mut max_width = 0u32;
        let mut max_nonlinear_width = 0u32;
        let mut start = 0u32;
        bounds.push(0);
        for l in 0..nl {
            let width = linear_count[l] + nonlinear_count[l];
            split.push(linear_count[l]);
            max_width = max_width.max(width);
            max_nonlinear_width = max_nonlinear_width.max(nonlinear_count[l]);
            start += width;
            bounds.push(start);
        }
        // Fill positions: linear gates from the level start, nonlinear
        // gates from the split point.
        let mut next_linear: Vec<u32> = (0..nl).map(|l| bounds[l]).collect();
        let mut next_nonlinear: Vec<u32> = (0..nl).map(|l| bounds[l] + split[l]).collect();
        let mut order = vec![0u32; gates.len()];
        for (gi, g) in gates.iter().enumerate() {
            let l = gate_level[gi] as usize;
            let slot = if g.op.is_linear() {
                let s = next_linear[l];
                next_linear[l] += 1;
                s
            } else {
                let s = next_nonlinear[l];
                next_nonlinear[l] += 1;
                s
            };
            order[slot as usize] = gi as u32;
        }

        Self {
            order,
            bounds,
            split,
            gate_level,
            wire_level,
            ordinal,
            non_xor,
            max_width,
            max_nonlinear_width,
        }
    }

    /// Number of topological levels (0 for a gate-free circuit).
    pub fn levels(&self) -> usize {
        self.bounds.len() - 1
    }

    /// All gate indices of level `l`, linear group first.
    pub fn level_gates(&self, l: usize) -> &[u32] {
        &self.order[self.bounds[l] as usize..self.bounds[l + 1] as usize]
    }

    /// Level `l` as `(linear, nonlinear)` gate-index slices.
    pub fn level_split(&self, l: usize) -> (&[u32], &[u32]) {
        self.level_gates(l).split_at(self.split[l] as usize)
    }

    /// ASAP level of gate `gi`.
    pub fn gate_level(&self, gi: usize) -> u32 {
        self.gate_level[gi]
    }

    /// Level of the value on wire `w` (0 = available at cycle start).
    pub fn wire_level(&self, w: usize) -> u32 {
        self.wire_level[w]
    }

    /// Emission slot of gate `gi`: its index among the circuit's
    /// nonlinear gates in netlist order, or `None` for linear gates.
    ///
    /// A layered cycle writes each garbled table into this slot and
    /// emits slots in ascending order, reproducing the netlist-order
    /// table stream exactly.
    pub fn nonlinear_ordinal(&self, gi: usize) -> Option<u32> {
        match self.ordinal[gi] {
            u32::MAX => None,
            o => Some(o),
        }
    }

    /// Nonlinear gates per cycle (= emission slots).
    pub fn non_xor_count(&self) -> u32 {
        self.non_xor
    }

    /// Widest level in gates.
    pub fn max_width(&self) -> u32 {
        self.max_width
    }

    /// Widest level in nonlinear gates — the largest hash batch a
    /// layered cycle can form on this circuit.
    pub fn max_nonlinear_width(&self) -> u32 {
        self.max_nonlinear_width
    }

    /// Whether a label copy from `src` into the output of gate `gi`
    /// respects this schedule: `src`'s value must be final by the time
    /// level `gate_level(gi)` executes.
    ///
    /// The SkipGate decision pass can alias a gate's output to *any*
    /// earlier-netlist wire, including one produced at a deeper level;
    /// engines check each cycle's aliases with this predicate and fall
    /// back to the netlist-order walk for the (rare) cycles where the
    /// static levels cannot honour such an edge.
    pub fn copy_is_level_safe(&self, gi: usize, src_wire: usize) -> bool {
        self.wire_level[src_wire] <= self.gate_level[gi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, Op, Role};

    #[test]
    fn chain_levels_one_gate_each() {
        let mut b = CircuitBuilder::new("chain");
        let mut x = b.input(Role::Alice);
        let ys: Vec<_> = (0..5).map(|_| b.input(Role::Bob)).collect();
        for &y in &ys {
            x = b.and(x, y);
        }
        b.output(x);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.levels(), 5);
        assert_eq!(s.max_width(), 1);
        assert_eq!(s.max_nonlinear_width(), 1);
        for l in 0..5 {
            assert_eq!(s.level_gates(l), &[l as u32]);
        }
    }

    #[test]
    fn parallel_gates_share_one_level() {
        let mut b = CircuitBuilder::new("wide");
        let xs = b.inputs(Role::Alice, 8);
        let ys = b.inputs(Role::Bob, 8);
        let outs: Vec<_> = xs.iter().zip(&ys).map(|(&x, &y)| b.and(x, y)).collect();
        b.outputs(&outs);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.levels(), 1);
        assert_eq!(s.max_width(), 8);
        assert_eq!(s.max_nonlinear_width(), 8);
        assert_eq!(s.level_gates(0).len(), 8);
    }

    #[test]
    fn levels_respect_dependencies_and_partition() {
        // Mixed shape: two ANDs feeding a XOR feeding an AND.
        let mut b = CircuitBuilder::new("mix");
        let i = b.inputs(Role::Alice, 4);
        let j = b.inputs(Role::Bob, 4);
        let a0 = b.and(i[0], j[0]); // level 0
        let a1 = b.and(i[1], j[1]); // level 0
        let x = b.xor(a0, a1); // level 1 (linear)
        let top = b.and(x, i[2]); // level 2
        b.outputs(&[top, a0]);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.levels(), 3);
        let (lin0, non0) = s.level_split(0);
        assert!(lin0.is_empty());
        assert_eq!(non0, &[0, 1]);
        let (lin1, non1) = s.level_split(1);
        assert_eq!(lin1, &[2]);
        assert!(non1.is_empty());
        // Every gate appears exactly once, dependencies point backwards.
        let mut seen = vec![false; c.gates().len()];
        for l in 0..s.levels() {
            for &gi in s.level_gates(l) {
                assert!(!seen[gi as usize]);
                seen[gi as usize] = true;
                let g = c.gates()[gi as usize];
                assert!(s.wire_level(g.a.index()) <= l as u32);
                assert!(s.wire_level(g.b.index()) <= l as u32);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ordinals_recover_netlist_order() {
        let mut b = CircuitBuilder::new("ord");
        let i = b.inputs(Role::Alice, 3);
        let j = b.inputs(Role::Bob, 3);
        let a0 = b.and(i[0], j[0]);
        let x = b.xor(i[1], j[1]); // linear: no ordinal
        let a1 = b.and(x, j[2]);
        let a2 = b.gate(Op::OR, a0, a1);
        b.output(a2);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.non_xor_count(), 3);
        assert_eq!(s.nonlinear_ordinal(0), Some(0));
        assert_eq!(s.nonlinear_ordinal(1), None);
        assert_eq!(s.nonlinear_ordinal(2), Some(1));
        assert_eq!(s.nonlinear_ordinal(3), Some(2));
    }

    #[test]
    fn copy_safety_predicate() {
        let mut b = CircuitBuilder::new("safe");
        let i = b.input(Role::Alice);
        let j = b.input(Role::Bob);
        let a0 = b.and(i, j); // gate 0, level 0 → out level 1
        let a1 = b.and(a0, j); // gate 1, level 1 → out level 2
        b.outputs(&[a1]);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        // Gate 1 (level 1) may copy from inputs (level 0) and from a0's
        // output (level 1), but gate 0 (level 0) cannot copy from
        // either gate output.
        assert!(s.copy_is_level_safe(1, i.index()));
        assert!(s.copy_is_level_safe(1, a0.index()));
        assert!(!s.copy_is_level_safe(0, a0.index()));
        assert!(!s.copy_is_level_safe(0, a1.index()));
    }
}
