//! Precomputed topological layer schedules for the garbling hot loop.
//!
//! The wavefront batchers in `arm2gc-garble` discover parallelism *on
//! the fly* inside the netlist-order walk of one cycle: a wavefront
//! ends at the first gate that consumes a label the current batch still
//! owes. A [`LayerSchedule`] instead levels the circuit once — ASAP
//! (as-soon-as-possible) topological levels — and is reused for every
//! clock cycle: ARM2GC garbles the *same* CPU circuit every cycle, so
//! the cost of scheduling amortises to zero while every level's
//! nonlinear gates can hash through the wide AES core in a single
//! batch, however the netlist interleaves its dependency chains.
//!
//! The schedule only reorders *computation*. Garbled tables still go on
//! the wire in exact netlist gate order ([`LayerSchedule::nonlinear_ordinal`]
//! gives each gate its emission slot), so a layer-scheduled run is
//! byte-identical to a sequential or wavefront run — the
//! strategy-equivalence suite in `arm2gc-bench` pins exactly that.

use crate::ir::Circuit;

/// How an engine orders the label computations of one clock cycle.
///
/// Both modes produce byte-identical protocol transcripts (tables are
/// always emitted in netlist gate order); they differ only in how many
/// independent nonlinear gates reach the batched hash at once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScheduleMode {
    /// Walk gates in netlist order, batching maximal ready runs on the
    /// fly (the wavefront scheduler).
    #[default]
    Netlist,
    /// Execute a precomputed [`LayerSchedule`] level by level, hashing
    /// each level's nonlinear gates in one batch.
    Layered,
}

/// A precomputed ASAP topological level schedule for one [`Circuit`].
///
/// Level `L` contains exactly the gates whose inputs are all produced
/// by levels `< L` (primary inputs, constants and flip-flop outputs are
/// level-0 sources), so all gates within one level are mutually
/// independent and may be computed in any order — including as one wide
/// hash batch. Within a level, gates are stored linear-first (then
/// nonlinear), each group in ascending netlist order.
#[derive(Clone, Debug)]
pub struct LayerSchedule {
    /// Gate indices, level-major.
    order: Vec<u32>,
    /// `order[bounds[l]..bounds[l + 1]]` is level `l`.
    bounds: Vec<u32>,
    /// Start of the nonlinear group inside each level's slice
    /// (relative to the level start).
    split: Vec<u32>,
    /// ASAP level of every gate (netlist-indexed).
    gate_level: Vec<u32>,
    /// Level of the value carried by every wire: 0 for sources,
    /// `gate_level + 1` for gate outputs.
    wire_level: Vec<u32>,
    /// Emission slot of every gate: its index among nonlinear gates in
    /// netlist order (`u32::MAX` for linear gates).
    ordinal: Vec<u32>,
    /// Nonlinear gates per cycle.
    non_xor: u32,
    /// Widest level, in gates.
    max_width: u32,
    /// Widest level, in nonlinear gates (= the largest possible hash
    /// batch a layered cycle can form).
    max_nonlinear_width: u32,
}

impl LayerSchedule {
    /// Levels `circuit` (one linear pass over the netlist).
    pub fn of(circuit: &Circuit) -> Self {
        let gates = circuit.gates();
        let mut wire_level = vec![0u32; circuit.wire_count()];
        let mut gate_level = vec![0u32; gates.len()];
        let mut ordinal = vec![u32::MAX; gates.len()];
        let mut non_xor = 0u32;
        let mut levels = 0u32;
        // Netlist order is topological, so one forward pass settles
        // every level.
        for (gi, g) in gates.iter().enumerate() {
            let l = wire_level[g.a.index()].max(wire_level[g.b.index()]);
            gate_level[gi] = l;
            wire_level[g.out.index()] = l + 1;
            levels = levels.max(l + 1);
            if !g.op.is_linear() {
                ordinal[gi] = non_xor;
                non_xor += 1;
            }
        }

        // Counting sort into level buckets: linear group first, then
        // nonlinear, both in ascending netlist order.
        let nl = levels as usize;
        let mut linear_count = vec![0u32; nl];
        let mut nonlinear_count = vec![0u32; nl];
        for (gi, g) in gates.iter().enumerate() {
            if g.op.is_linear() {
                linear_count[gate_level[gi] as usize] += 1;
            } else {
                nonlinear_count[gate_level[gi] as usize] += 1;
            }
        }
        let mut bounds = Vec::with_capacity(nl + 1);
        let mut split = Vec::with_capacity(nl);
        let mut max_width = 0u32;
        let mut max_nonlinear_width = 0u32;
        let mut start = 0u32;
        bounds.push(0);
        for l in 0..nl {
            let width = linear_count[l] + nonlinear_count[l];
            split.push(linear_count[l]);
            max_width = max_width.max(width);
            max_nonlinear_width = max_nonlinear_width.max(nonlinear_count[l]);
            start += width;
            bounds.push(start);
        }
        // Fill positions: linear gates from the level start, nonlinear
        // gates from the split point.
        let mut next_linear: Vec<u32> = (0..nl).map(|l| bounds[l]).collect();
        let mut next_nonlinear: Vec<u32> = (0..nl).map(|l| bounds[l] + split[l]).collect();
        let mut order = vec![0u32; gates.len()];
        for (gi, g) in gates.iter().enumerate() {
            let l = gate_level[gi] as usize;
            let slot = if g.op.is_linear() {
                let s = next_linear[l];
                next_linear[l] += 1;
                s
            } else {
                let s = next_nonlinear[l];
                next_nonlinear[l] += 1;
                s
            };
            order[slot as usize] = gi as u32;
        }

        Self {
            order,
            bounds,
            split,
            gate_level,
            wire_level,
            ordinal,
            non_xor,
            max_width,
            max_nonlinear_width,
        }
    }

    /// Number of topological levels (0 for a gate-free circuit).
    pub fn levels(&self) -> usize {
        self.bounds.len() - 1
    }

    /// All gate indices of level `l`, linear group first.
    pub fn level_gates(&self, l: usize) -> &[u32] {
        &self.order[self.bounds[l] as usize..self.bounds[l + 1] as usize]
    }

    /// Level `l` as `(linear, nonlinear)` gate-index slices.
    pub fn level_split(&self, l: usize) -> (&[u32], &[u32]) {
        self.level_gates(l).split_at(self.split[l] as usize)
    }

    /// ASAP level of gate `gi`.
    pub fn gate_level(&self, gi: usize) -> u32 {
        self.gate_level[gi]
    }

    /// Level of the value on wire `w` (0 = available at cycle start).
    pub fn wire_level(&self, w: usize) -> u32 {
        self.wire_level[w]
    }

    /// Emission slot of gate `gi`: its index among the circuit's
    /// nonlinear gates in netlist order, or `None` for linear gates.
    ///
    /// A layered cycle writes each garbled table into this slot and
    /// emits slots in ascending order, reproducing the netlist-order
    /// table stream exactly.
    pub fn nonlinear_ordinal(&self, gi: usize) -> Option<u32> {
        match self.ordinal[gi] {
            u32::MAX => None,
            o => Some(o),
        }
    }

    /// Nonlinear gates per cycle (= emission slots).
    pub fn non_xor_count(&self) -> u32 {
        self.non_xor
    }

    /// Widest level in gates.
    pub fn max_width(&self) -> u32 {
        self.max_width
    }

    /// Widest level in nonlinear gates — the largest hash batch a
    /// layered cycle can form on this circuit.
    pub fn max_nonlinear_width(&self) -> u32 {
        self.max_nonlinear_width
    }

    /// Whether a label copy from `src` into the output of gate `gi`
    /// respects this schedule: `src`'s value must be final by the time
    /// level `gate_level(gi)` executes.
    ///
    /// The SkipGate decision pass can alias a gate's output to *any*
    /// earlier-netlist wire, including one produced at a deeper level;
    /// engines check each cycle's aliases with this predicate and
    /// re-level the (rare) cycles where the static levels cannot honour
    /// such an edge ([`LayerSchedule::relevel_cycle`]).
    pub fn copy_is_level_safe(&self, gi: usize, src_wire: usize) -> bool {
        self.wire_level[src_wire] <= self.gate_level[gi]
    }

    /// Computes the per-cycle incremental re-leveling for a cycle whose
    /// effective dependencies (as classified by the shared SkipGate
    /// decision pass) do not all fit the static levels: every gate
    /// whose dependencies settle *later* than its static level — an
    /// alias edge into a deeper wire, or a transitive dependent of a
    /// gate that already moved — is pushed to the earliest level that
    /// satisfies them, and everything else keeps its static position.
    ///
    /// `dep` reports, per netlist gate index, which wires the gate's
    /// label computation actually reads this cycle (see [`CycleDep`]).
    /// The netlist is topological and alias sources always point at
    /// earlier-netlist wires, so one forward pass settles every
    /// effective level; because both parties derive `dep` from the
    /// identical decision vector, they compute the identical patch with
    /// zero coordination frames. Table emission is untouched — gates
    /// keep their netlist-ordinal emission slots, so the wire transcript
    /// stays byte-identical to a netlist-order walk.
    ///
    /// Returns `true` when at least one gate moved (`patch` is then
    /// non-identity); `false` leaves `patch` as the identity.
    pub fn relevel_cycle(
        &self,
        circuit: &Circuit,
        mut dep: impl FnMut(usize) -> CycleDep,
        patch: &mut CyclePatch,
    ) -> bool {
        let gates = circuit.gates();
        patch.reset(self);
        let mut levels = self.levels() as u32;
        for (gi, g) in gates.iter().enumerate() {
            let need = match dep(gi) {
                CycleDep::Absent => continue,
                CycleDep::Copy(src) => patch.eff_wire[src as usize],
                CycleDep::Inputs => patch.eff_wire[g.a.index()].max(patch.eff_wire[g.b.index()]),
            };
            // `need` is the earliest level at which every effective
            // input is final; static levels already satisfy plain
            // input edges, so only later-settling dependencies move a
            // gate.
            if need > self.gate_level[gi] {
                patch.moved_level[gi] = need;
                patch.moved.push(gi as u32);
                patch.eff_wire[g.out.index()] = need + 1;
                levels = levels.max(need + 1);
            }
        }
        if patch.moved.is_empty() {
            return false;
        }
        patch.identity = false;
        patch.levels = levels;
        patch.bucket_moved();
        true
    }
}

/// A gate's effective label dependencies for one cycle, as classified
/// by the (shared, deterministic) per-cycle decision pass — the input
/// to [`LayerSchedule::relevel_cycle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleDep {
    /// No label is computed for this gate this cycle (public output or
    /// skipped gate); it never moves and nothing may depend on it.
    Absent,
    /// The output label is copied from one wire (a pass-through or an
    /// alias edge — the latter may point at *any* earlier-netlist
    /// wire, including one produced at a deeper level).
    Copy(u32),
    /// Both netlist inputs are read (free XOR or garbled gate) —
    /// exactly the dependencies the static levels already honour.
    Inputs,
}

/// A per-cycle patch over a [`LayerSchedule`]: the set of gates pushed
/// to deeper levels because this cycle's alias edges (or their
/// transitive dependents) settle later than the static levels allow.
///
/// The patch is *sparse*: untouched gates run at their static level in
/// the static order, moved gates are appended to their patched level
/// (netlist order within a level). Buffers are reused across cycles —
/// keep one `CyclePatch` per engine run and hand it to
/// [`LayerSchedule::relevel_cycle`] every cycle that needs it; call
/// [`CyclePatch::clear`] on cycles that fit the static schedule.
///
/// A `CyclePatch` is bound to the schedule/circuit of the last
/// `relevel_cycle` call; its queries are meaningful only against that
/// schedule.
#[derive(Clone, Debug, Default)]
pub struct CyclePatch {
    /// Effective per-wire levels for the current cycle (static values
    /// except for the outputs of moved gates).
    eff_wire: Vec<u32>,
    /// Patched level per gate; `u32::MAX` = kept its static level.
    moved_level: Vec<u32>,
    /// Moved gate indices in netlist order; bucketed by level into
    /// `moved_order`/`moved_bounds` once the pass completes.
    moved: Vec<u32>,
    /// Moved gates, level-major (netlist order within a level).
    moved_order: Vec<u32>,
    /// `moved_order[moved_bounds[l]..moved_bounds[l + 1]]` is level `l`.
    moved_bounds: Vec<u32>,
    /// Patched level count (max of static levels and moved gates + 1).
    levels: u32,
    identity: bool,
}

impl CyclePatch {
    /// A reusable, identity patch.
    pub fn new() -> Self {
        Self {
            identity: true,
            ..Self::default()
        }
    }

    /// Resets to the identity over `sched` (full rebuild of the
    /// effective maps; the patch is only rebuilt on the rare cycles
    /// whose alias edges cross levels, so simplicity wins over an
    /// incremental undo).
    fn reset(&mut self, sched: &LayerSchedule) {
        self.eff_wire.clear();
        self.eff_wire.extend_from_slice(&sched.wire_level);
        self.moved_level.clear();
        self.moved_level.resize(sched.gate_level.len(), u32::MAX);
        self.moved.clear();
        self.moved_order.clear();
        self.moved_bounds.clear();
        self.levels = 0;
        self.identity = true;
    }

    /// Counting sort of the moved gates into per-level buckets
    /// (stable, so netlist order is kept within each level).
    fn bucket_moved(&mut self) {
        let nl = self.levels as usize;
        self.moved_bounds.clear();
        self.moved_bounds.resize(nl + 1, 0);
        for &gi in &self.moved {
            self.moved_bounds[self.moved_level[gi as usize] as usize + 1] += 1;
        }
        for l in 0..nl {
            self.moved_bounds[l + 1] += self.moved_bounds[l];
        }
        self.moved_order.clear();
        self.moved_order.resize(self.moved.len(), 0);
        let mut next = self.moved_bounds.clone();
        for &gi in &self.moved {
            let l = self.moved_level[gi as usize] as usize;
            self.moved_order[next[l] as usize] = gi;
            next[l] += 1;
        }
    }

    /// Makes this the identity patch (every gate at its static level);
    /// the cheap path for cycles whose alias edges all fit the static
    /// schedule.
    pub fn clear(&mut self) {
        self.moved.clear();
        self.moved_order.clear();
        self.moved_bounds.clear();
        self.levels = 0;
        self.identity = true;
    }

    /// Whether the patch moves no gate (the static schedule applies
    /// unchanged).
    pub fn is_identity(&self) -> bool {
        self.identity
    }

    /// Patched level count — 0 for the identity patch (drive the cycle
    /// with `sched.levels().max(patch.levels())` levels).
    pub fn levels(&self) -> usize {
        self.levels as usize
    }

    /// Number of gates pushed off their static level this cycle.
    pub fn moved_gates(&self) -> u64 {
        if self.identity {
            0
        } else {
            self.moved.len() as u64
        }
    }

    /// Whether gate `gi` left its static level (skip it in the static
    /// walk; it reappears via [`CyclePatch::moved_at`]).
    pub fn is_moved(&self, gi: usize) -> bool {
        !self.identity && self.moved_level[gi] != u32::MAX
    }

    /// The gates appended to level `l` by this patch, in netlist order.
    pub fn moved_at(&self, l: usize) -> &[u32] {
        if self.identity || l + 1 >= self.moved_bounds.len() {
            return &[];
        }
        &self.moved_order[self.moved_bounds[l] as usize..self.moved_bounds[l + 1] as usize]
    }

    /// Gate `gi`'s level under this patch (static unless moved).
    pub fn effective_gate_level(&self, sched: &LayerSchedule, gi: usize) -> u32 {
        if self.identity || self.moved_level[gi] == u32::MAX {
            sched.gate_level(gi)
        } else {
            self.moved_level[gi]
        }
    }

    /// Wire `w`'s level under this patch (static unless its producing
    /// gate moved).
    pub fn effective_wire_level(&self, sched: &LayerSchedule, w: usize) -> u32 {
        if self.identity {
            sched.wire_level(w)
        } else {
            self.eff_wire[w]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, Op, Role};

    #[test]
    fn chain_levels_one_gate_each() {
        let mut b = CircuitBuilder::new("chain");
        let mut x = b.input(Role::Alice);
        let ys: Vec<_> = (0..5).map(|_| b.input(Role::Bob)).collect();
        for &y in &ys {
            x = b.and(x, y);
        }
        b.output(x);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.levels(), 5);
        assert_eq!(s.max_width(), 1);
        assert_eq!(s.max_nonlinear_width(), 1);
        for l in 0..5 {
            assert_eq!(s.level_gates(l), &[l as u32]);
        }
    }

    #[test]
    fn parallel_gates_share_one_level() {
        let mut b = CircuitBuilder::new("wide");
        let xs = b.inputs(Role::Alice, 8);
        let ys = b.inputs(Role::Bob, 8);
        let outs: Vec<_> = xs.iter().zip(&ys).map(|(&x, &y)| b.and(x, y)).collect();
        b.outputs(&outs);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.levels(), 1);
        assert_eq!(s.max_width(), 8);
        assert_eq!(s.max_nonlinear_width(), 8);
        assert_eq!(s.level_gates(0).len(), 8);
    }

    #[test]
    fn levels_respect_dependencies_and_partition() {
        // Mixed shape: two ANDs feeding a XOR feeding an AND.
        let mut b = CircuitBuilder::new("mix");
        let i = b.inputs(Role::Alice, 4);
        let j = b.inputs(Role::Bob, 4);
        let a0 = b.and(i[0], j[0]); // level 0
        let a1 = b.and(i[1], j[1]); // level 0
        let x = b.xor(a0, a1); // level 1 (linear)
        let top = b.and(x, i[2]); // level 2
        b.outputs(&[top, a0]);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.levels(), 3);
        let (lin0, non0) = s.level_split(0);
        assert!(lin0.is_empty());
        assert_eq!(non0, &[0, 1]);
        let (lin1, non1) = s.level_split(1);
        assert_eq!(lin1, &[2]);
        assert!(non1.is_empty());
        // Every gate appears exactly once, dependencies point backwards.
        let mut seen = vec![false; c.gates().len()];
        for l in 0..s.levels() {
            for &gi in s.level_gates(l) {
                assert!(!seen[gi as usize]);
                seen[gi as usize] = true;
                let g = c.gates()[gi as usize];
                assert!(s.wire_level(g.a.index()) <= l as u32);
                assert!(s.wire_level(g.b.index()) <= l as u32);
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn ordinals_recover_netlist_order() {
        let mut b = CircuitBuilder::new("ord");
        let i = b.inputs(Role::Alice, 3);
        let j = b.inputs(Role::Bob, 3);
        let a0 = b.and(i[0], j[0]);
        let x = b.xor(i[1], j[1]); // linear: no ordinal
        let a1 = b.and(x, j[2]);
        let a2 = b.gate(Op::OR, a0, a1);
        b.output(a2);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.non_xor_count(), 3);
        assert_eq!(s.nonlinear_ordinal(0), Some(0));
        assert_eq!(s.nonlinear_ordinal(1), None);
        assert_eq!(s.nonlinear_ordinal(2), Some(1));
        assert_eq!(s.nonlinear_ordinal(3), Some(2));
    }

    #[test]
    fn copy_safety_predicate() {
        let mut b = CircuitBuilder::new("safe");
        let i = b.input(Role::Alice);
        let j = b.input(Role::Bob);
        let a0 = b.and(i, j); // gate 0, level 0 → out level 1
        let a1 = b.and(a0, j); // gate 1, level 1 → out level 2
        b.outputs(&[a1]);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        // Gate 1 (level 1) may copy from inputs (level 0) and from a0's
        // output (level 1), but gate 0 (level 0) cannot copy from
        // either gate output.
        assert!(s.copy_is_level_safe(1, i.index()));
        assert!(s.copy_is_level_safe(1, a0.index()));
        assert!(!s.copy_is_level_safe(0, a0.index()));
        assert!(!s.copy_is_level_safe(0, a1.index()));
    }

    /// Two parallel AND chains; gate 2 (static level 0) aliases the
    /// output of gate 1 (produced at level 2) — the crossing edge that
    /// used to force a whole-cycle fallback. Re-leveling must push gate
    /// 2 to level 2 and its dependent gate 3 to level 3, and leave the
    /// untouched chain at its static levels.
    #[test]
    fn relevel_pushes_crossing_alias_and_dependents() {
        let mut b = CircuitBuilder::new("cross");
        let i = b.inputs(Role::Alice, 2);
        let j = b.inputs(Role::Bob, 2);
        let g0 = b.and(i[0], j[0]); // gate 0, level 0, out level 1
        let g1 = b.and(g0, j[0]); // gate 1, level 1, out level 2
        let g2 = b.and(i[1], j[1]); // gate 2, level 0, out level 1
        let g3 = b.and(g2, j[1]); // gate 3, level 1, out level 2
        b.outputs(&[g1, g3]);
        let c = b.build();
        let s = LayerSchedule::of(&c);
        assert_eq!(s.levels(), 2);

        let mut patch = CyclePatch::new();
        // Cycle decisions: gates 0/1/3 compute both inputs, gate 2's
        // output is aliased to gate 1's output wire (level 2 > 0).
        let g1_out = c.gates()[1].out.index() as u32;
        let deps = move |gi: usize| match gi {
            2 => CycleDep::Copy(g1_out),
            _ => CycleDep::Inputs,
        };
        assert!(s.relevel_cycle(&c, deps, &mut patch));
        assert!(!patch.is_identity());
        assert_eq!(patch.moved_gates(), 2);
        assert_eq!(patch.levels(), 4);
        assert!(!patch.is_moved(0));
        assert!(!patch.is_moved(1));
        assert!(patch.is_moved(2));
        assert!(patch.is_moved(3));
        assert_eq!(patch.moved_at(0), &[] as &[u32]);
        assert_eq!(patch.moved_at(1), &[] as &[u32]);
        assert_eq!(patch.moved_at(2), &[2]);
        assert_eq!(patch.moved_at(3), &[3]);
        assert_eq!(patch.effective_gate_level(&s, 0), 0);
        assert_eq!(patch.effective_gate_level(&s, 1), 1);
        assert_eq!(patch.effective_gate_level(&s, 2), 2);
        assert_eq!(patch.effective_gate_level(&s, 3), 3);
        // Effective wire levels follow the moved producers.
        assert_eq!(patch.effective_wire_level(&s, g2.index()), 3);
        assert_eq!(patch.effective_wire_level(&s, g3.index()), 4);
        assert_eq!(patch.effective_wire_level(&s, g0.index()), 1);
        assert_eq!(patch.effective_wire_level(&s, g1.index()), 2);
        // Every non-absent gate still runs strictly after its
        // effective dependencies.
        for (gi, g) in c.gates().iter().enumerate() {
            let lvl = patch.effective_gate_level(&s, gi);
            let need = match deps(gi) {
                CycleDep::Absent => continue,
                CycleDep::Copy(w) => patch.effective_wire_level(&s, w as usize),
                CycleDep::Inputs => patch
                    .effective_wire_level(&s, g.a.index())
                    .max(patch.effective_wire_level(&s, g.b.index())),
            };
            assert!(lvl >= need, "gate {gi} at {lvl} needs {need}");
        }
    }

    /// Deps that already fit the static levels produce the identity
    /// patch, and a reused buffer recovers after a re-leveled cycle.
    #[test]
    fn relevel_identity_and_buffer_reuse() {
        let mut b = CircuitBuilder::new("reuse");
        let i = b.inputs(Role::Alice, 2);
        let j = b.inputs(Role::Bob, 2);
        let g0 = b.and(i[0], j[0]);
        let _g1 = b.and(g0, j[0]);
        let _g2 = b.and(i[1], j[1]);
        b.outputs(&[_g1, _g2]);
        let c = b.build();
        let s = LayerSchedule::of(&c);

        let mut patch = CyclePatch::new();
        assert!(patch.is_identity());
        assert_eq!(patch.moved_gates(), 0);
        assert!(!patch.is_moved(0));
        assert_eq!(patch.moved_at(0), &[] as &[u32]);

        // Static-fitting deps: no move.
        assert!(!s.relevel_cycle(&c, |_| CycleDep::Inputs, &mut patch));
        assert!(patch.is_identity());
        assert_eq!(patch.levels(), 0);

        // A crossing cycle dirties the buffer...
        let g1_out = c.gates()[1].out.index() as u32;
        assert!(s.relevel_cycle(
            &c,
            move |gi| if gi == 2 {
                CycleDep::Copy(g1_out)
            } else {
                CycleDep::Inputs
            },
            &mut patch
        ));
        assert!(patch.is_moved(2));

        // ...and the next identity cycle fully recovers, whether via
        // relevel or an explicit clear.
        assert!(!s.relevel_cycle(&c, |_| CycleDep::Inputs, &mut patch));
        assert!(patch.is_identity());
        assert!(!patch.is_moved(2));
        patch.clear();
        assert!(patch.is_identity());
    }

    /// Absent gates (public/skipped) neither move nor hold anything
    /// back: an alias into a deep wire moves only live dependents.
    #[test]
    fn relevel_ignores_absent_gates() {
        let mut b = CircuitBuilder::new("absent");
        let i = b.inputs(Role::Alice, 2);
        let j = b.inputs(Role::Bob, 2);
        let g0 = b.and(i[0], j[0]); // gate 0
        let _g1 = b.and(g0, j[0]); // gate 1 (deep src)
        let _g2 = b.and(i[1], j[1]); // gate 2: absent this cycle
        let _g3 = b.and(i[1], j[0]); // gate 3: aliases gate 1's out
        b.outputs(&[_g1, _g2, _g3]);
        let c = b.build();
        let s = LayerSchedule::of(&c);

        let mut patch = CyclePatch::new();
        let g1_out = c.gates()[1].out.index() as u32;
        assert!(s.relevel_cycle(
            &c,
            move |gi| match gi {
                2 => CycleDep::Absent,
                3 => CycleDep::Copy(g1_out),
                _ => CycleDep::Inputs,
            },
            &mut patch
        ));
        assert_eq!(patch.moved_gates(), 1);
        assert!(!patch.is_moved(2));
        assert!(patch.is_moved(3));
        assert_eq!(patch.effective_gate_level(&s, 3), 2);
    }
}
