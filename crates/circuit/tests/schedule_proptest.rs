//! Property tests for [`LayerSchedule`]: on random sequential circuits
//! the schedule must be a *permutation* of the netlist that respects
//! every dependency, and the emission-order bookkeeping must recover
//! netlist order exactly — the invariant the engines rely on to keep
//! layer-scheduled transcripts byte-identical.

use proptest::prelude::*;

use arm2gc_circuit::random::{random_circuit, RandomCircuitParams, TestRng};
use arm2gc_circuit::{LayerSchedule, OutputMode};

fn cases_or(default_cases: u32) -> ProptestConfig {
    if std::env::var_os("PROPTEST_CASES").is_some() {
        ProptestConfig::default()
    } else {
        ProptestConfig::with_cases(default_cases)
    }
}

proptest! {
    #![proptest_config(cases_or(128))]

    /// Every gate appears exactly once across the levels, every level's
    /// gates depend only on wires settled by earlier levels, and the
    /// per-level linear/nonlinear split is exact.
    #[test]
    fn schedule_is_a_dependency_respecting_permutation(
        seed in 1u64..100_000,
        gates in 1usize..120,
        dffs in 0usize..6,
    ) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (3, 3, 2),
            dffs,
            gates,
            outputs: 4,
            output_mode: OutputMode::FinalOnly,
        };
        let c = random_circuit(&mut rng, params);
        let s = LayerSchedule::of(&c);

        let mut seen = vec![false; c.gates().len()];
        let mut total = 0usize;
        for level in 0..s.levels() {
            let (linear, nonlinear) = s.level_split(level);
            prop_assert_eq!(
                linear.len() + nonlinear.len(),
                s.level_gates(level).len()
            );
            for &gi in linear {
                prop_assert!(c.gates()[gi as usize].op.is_linear());
            }
            for &gi in nonlinear {
                prop_assert!(!c.gates()[gi as usize].op.is_linear());
            }
            for &gi in s.level_gates(level) {
                let gi = gi as usize;
                prop_assert!(!seen[gi], "gate {} scheduled twice", gi);
                seen[gi] = true;
                total += 1;
                prop_assert_eq!(s.gate_level(gi), level as u32);
                let g = c.gates()[gi];
                // Inputs settle strictly before this level executes.
                prop_assert!(s.wire_level(g.a.index()) <= level as u32);
                prop_assert!(s.wire_level(g.b.index()) <= level as u32);
                // The output settles for the next level.
                prop_assert_eq!(s.wire_level(g.out.index()), level as u32 + 1);
            }
        }
        prop_assert_eq!(total, c.gates().len(), "every gate appears once");
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// Emission slots are a bijection onto `0..non_xor` that is
    /// *increasing in netlist index*: walking the schedule and sorting
    /// garbled gates by slot recovers the exact netlist order of
    /// nonlinear gates — so a slot-ordered table emission reproduces
    /// the sequential stream byte for byte.
    #[test]
    fn emission_order_recovers_netlist_order(
        seed in 1u64..100_000,
        gates in 1usize..120,
    ) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (3, 3, 2),
            dffs: 3,
            gates,
            outputs: 4,
            output_mode: OutputMode::FinalOnly,
        };
        let c = random_circuit(&mut rng, params);
        let s = LayerSchedule::of(&c);

        // Collect (slot, gate index) pairs by walking the schedule in
        // level order — the order a layered cycle garbles in.
        let mut emitted: Vec<(u32, u32)> = Vec::new();
        for level in 0..s.levels() {
            let (_, nonlinear) = s.level_split(level);
            for &gi in nonlinear {
                let slot = s.nonlinear_ordinal(gi as usize)
                    .expect("nonlinear gates carry a slot");
                emitted.push((slot, gi));
            }
        }
        prop_assert_eq!(emitted.len() as u32, s.non_xor_count());
        prop_assert_eq!(u64::from(s.non_xor_count()), c.non_xor_count());

        emitted.sort_unstable();
        let netlist: Vec<u32> = c
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.op.is_linear())
            .map(|(gi, _)| gi as u32)
            .collect();
        let slots: Vec<u32> = emitted.iter().map(|&(s, _)| s).collect();
        let order: Vec<u32> = emitted.iter().map(|&(_, g)| g).collect();
        prop_assert_eq!(slots, (0..s.non_xor_count()).collect::<Vec<_>>());
        prop_assert_eq!(order, netlist, "slot order == netlist order");

        // Linear gates never get a slot.
        for (gi, g) in c.gates().iter().enumerate() {
            prop_assert_eq!(s.nonlinear_ordinal(gi).is_none(), g.op.is_linear());
        }
    }

    /// Width metrics match a direct recount.
    #[test]
    fn width_metrics_are_exact(seed in 1u64..100_000, gates in 1usize..120) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            gates,
            ..RandomCircuitParams::default()
        };
        let c = random_circuit(&mut rng, params);
        let s = LayerSchedule::of(&c);
        let mut max_w = 0;
        let mut max_nl = 0;
        for level in 0..s.levels() {
            max_w = max_w.max(s.level_gates(level).len());
            max_nl = max_nl.max(s.level_split(level).1.len());
        }
        prop_assert_eq!(s.max_width() as usize, max_w);
        prop_assert_eq!(s.max_nonlinear_width() as usize, max_nl);
    }
}
