//! Property tests for [`LayerSchedule`]: on random sequential circuits
//! the schedule must be a *permutation* of the netlist that respects
//! every dependency, and the emission-order bookkeeping must recover
//! netlist order exactly — the invariant the engines rely on to keep
//! layer-scheduled transcripts byte-identical. The per-cycle
//! re-leveling patch gets the same treatment: on random effective
//! dependency assignments (including level-crossing copies, the case
//! that used to force whole-cycle fallback) the patched walk must stay
//! a minimal, dependency-respecting permutation.

use proptest::prelude::*;

use arm2gc_circuit::random::{random_circuit, RandomCircuitParams, TestRng};
use arm2gc_circuit::{CycleDep, CyclePatch, LayerSchedule, OutputMode};

fn cases_or(default_cases: u32) -> ProptestConfig {
    if std::env::var_os("PROPTEST_CASES").is_some() {
        ProptestConfig::default()
    } else {
        ProptestConfig::with_cases(default_cases)
    }
}

proptest! {
    #![proptest_config(cases_or(128))]

    /// Every gate appears exactly once across the levels, every level's
    /// gates depend only on wires settled by earlier levels, and the
    /// per-level linear/nonlinear split is exact.
    #[test]
    fn schedule_is_a_dependency_respecting_permutation(
        seed in 1u64..100_000,
        gates in 1usize..120,
        dffs in 0usize..6,
    ) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (3, 3, 2),
            dffs,
            gates,
            outputs: 4,
            output_mode: OutputMode::FinalOnly,
        };
        let c = random_circuit(&mut rng, params);
        let s = LayerSchedule::of(&c);

        let mut seen = vec![false; c.gates().len()];
        let mut total = 0usize;
        for level in 0..s.levels() {
            let (linear, nonlinear) = s.level_split(level);
            prop_assert_eq!(
                linear.len() + nonlinear.len(),
                s.level_gates(level).len()
            );
            for &gi in linear {
                prop_assert!(c.gates()[gi as usize].op.is_linear());
            }
            for &gi in nonlinear {
                prop_assert!(!c.gates()[gi as usize].op.is_linear());
            }
            for &gi in s.level_gates(level) {
                let gi = gi as usize;
                prop_assert!(!seen[gi], "gate {} scheduled twice", gi);
                seen[gi] = true;
                total += 1;
                prop_assert_eq!(s.gate_level(gi), level as u32);
                let g = c.gates()[gi];
                // Inputs settle strictly before this level executes.
                prop_assert!(s.wire_level(g.a.index()) <= level as u32);
                prop_assert!(s.wire_level(g.b.index()) <= level as u32);
                // The output settles for the next level.
                prop_assert_eq!(s.wire_level(g.out.index()), level as u32 + 1);
            }
        }
        prop_assert_eq!(total, c.gates().len(), "every gate appears once");
        prop_assert!(seen.iter().all(|&x| x));
    }

    /// Emission slots are a bijection onto `0..non_xor` that is
    /// *increasing in netlist index*: walking the schedule and sorting
    /// garbled gates by slot recovers the exact netlist order of
    /// nonlinear gates — so a slot-ordered table emission reproduces
    /// the sequential stream byte for byte.
    #[test]
    fn emission_order_recovers_netlist_order(
        seed in 1u64..100_000,
        gates in 1usize..120,
    ) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (3, 3, 2),
            dffs: 3,
            gates,
            outputs: 4,
            output_mode: OutputMode::FinalOnly,
        };
        let c = random_circuit(&mut rng, params);
        let s = LayerSchedule::of(&c);

        // Collect (slot, gate index) pairs by walking the schedule in
        // level order — the order a layered cycle garbles in.
        let mut emitted: Vec<(u32, u32)> = Vec::new();
        for level in 0..s.levels() {
            let (_, nonlinear) = s.level_split(level);
            for &gi in nonlinear {
                let slot = s.nonlinear_ordinal(gi as usize)
                    .expect("nonlinear gates carry a slot");
                emitted.push((slot, gi));
            }
        }
        prop_assert_eq!(emitted.len() as u32, s.non_xor_count());
        prop_assert_eq!(u64::from(s.non_xor_count()), c.non_xor_count());

        emitted.sort_unstable();
        let netlist: Vec<u32> = c
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| !g.op.is_linear())
            .map(|(gi, _)| gi as u32)
            .collect();
        let slots: Vec<u32> = emitted.iter().map(|&(s, _)| s).collect();
        let order: Vec<u32> = emitted.iter().map(|&(_, g)| g).collect();
        prop_assert_eq!(slots, (0..s.non_xor_count()).collect::<Vec<_>>());
        prop_assert_eq!(order, netlist, "slot order == netlist order");

        // Linear gates never get a slot.
        for (gi, g) in c.gates().iter().enumerate() {
            prop_assert_eq!(s.nonlinear_ordinal(gi).is_none(), g.op.is_linear());
        }
    }

    /// Per-cycle re-leveling on random circuits with random effective
    /// dependencies — including alias-style copies into *deeper-level*
    /// wires, the crossing case that used to force a whole-cycle
    /// fallback. The patch must be minimal (a gate moves iff its
    /// effective dependencies settle after its static level, and then
    /// exactly as far as needed), and walking static-minus-moved plus
    /// `moved_at` per level must visit every gate exactly once with all
    /// effective dependencies settled by earlier levels.
    #[test]
    fn relevel_patch_is_minimal_and_dependency_respecting(
        seed in 1u64..100_000,
        gates in 1usize..120,
        dffs in 0usize..6,
    ) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (3, 3, 2),
            dffs,
            gates,
            outputs: 4,
            output_mode: OutputMode::FinalOnly,
        };
        let c = random_circuit(&mut rng, params);
        let s = LayerSchedule::of(&c);

        // Random per-cycle deps mirroring the decision-pass invariants:
        // a copy source is always an earlier-netlist *live* wire (a
        // level-0 source or the output of a non-absent earlier gate) —
        // possibly one produced at a deeper level than the copying
        // gate — and absent gates produce nothing anyone reads.
        let mut live: Vec<u32> = (0..c.wire_count())
            .filter(|&w| s.wire_level(w) == 0)
            .map(|w| w as u32)
            .collect();
        let mut wire_live = vec![false; c.wire_count()];
        for &w in &live {
            wire_live[w as usize] = true;
        }
        let mut deps = Vec::with_capacity(c.gates().len());
        for g in c.gates() {
            let inputs_ok = wire_live[g.a.index()] && wire_live[g.b.index()];
            let d = match rng.below(8) {
                0 => CycleDep::Absent,
                1 | 2 => CycleDep::Copy(live[rng.below(live.len())]),
                _ if inputs_ok => CycleDep::Inputs,
                _ => CycleDep::Copy(live[rng.below(live.len())]),
            };
            if !matches!(d, CycleDep::Absent) {
                wire_live[g.out.index()] = true;
                live.push(g.out.index() as u32);
            }
            deps.push(d);
        }

        let mut patch = CyclePatch::new();
        let moved = s.relevel_cycle(&c, |gi| deps[gi], &mut patch);

        // Relevel triggers exactly on a direct level-crossing copy: if
        // every copy source settles by its gate's static level, static
        // levels already satisfy everything and nothing moves.
        let crossing = deps.iter().enumerate().any(|(gi, d)| match *d {
            CycleDep::Copy(w) => !s.copy_is_level_safe(gi, w as usize),
            _ => false,
        });
        prop_assert_eq!(moved, crossing);
        prop_assert_eq!(moved, !patch.is_identity());
        if !moved {
            prop_assert_eq!(patch.levels(), 0);
            prop_assert_eq!(patch.moved_gates(), 0);
        }

        // Minimality and validity of every gate's effective level.
        let mut moved_count = 0u64;
        for (gi, g) in c.gates().iter().enumerate() {
            if patch.is_moved(gi) {
                moved_count += 1;
            }
            let lvl = patch.effective_gate_level(&s, gi);
            let need = match deps[gi] {
                CycleDep::Absent => {
                    // Absent gates never move.
                    prop_assert!(!patch.is_moved(gi));
                    continue;
                }
                CycleDep::Copy(w) => patch.effective_wire_level(&s, w as usize),
                CycleDep::Inputs => patch
                    .effective_wire_level(&s, g.a.index())
                    .max(patch.effective_wire_level(&s, g.b.index())),
            };
            // Earliest level satisfying the deps, never earlier than
            // the static level (unmoved gates keep it exactly).
            prop_assert_eq!(lvl, need.max(s.gate_level(gi)));
            prop_assert_eq!(patch.is_moved(gi), need > s.gate_level(gi));
            // The output settles one level later for downstream gates.
            prop_assert_eq!(
                patch.effective_wire_level(&s, g.out.index()),
                lvl + 1
            );
        }
        prop_assert_eq!(patch.moved_gates(), moved_count);

        // The engines' patched walk — static levels minus moved gates,
        // plus each level's moved bucket — is a permutation of the
        // netlist in which every effective dependency settles strictly
        // before its consumer's level executes.
        let mut settled: Vec<bool> = (0..c.wire_count())
            .map(|w| s.wire_level(w) == 0)
            .collect();
        let mut executed = vec![false; c.gates().len()];
        let total_levels = s.levels().max(patch.levels());
        for level in 0..total_levels {
            let mut at_level: Vec<usize> = Vec::new();
            if level < s.levels() {
                at_level.extend(
                    s.level_gates(level)
                        .iter()
                        .map(|&gi| gi as usize)
                        .filter(|&gi| !patch.is_moved(gi)),
                );
            }
            at_level.extend(patch.moved_at(level).iter().map(|&gi| gi as usize));
            for &gi in &at_level {
                prop_assert!(!executed[gi], "gate {} executed twice", gi);
                executed[gi] = true;
                let g = c.gates()[gi];
                match deps[gi] {
                    CycleDep::Absent => {}
                    CycleDep::Copy(w) => prop_assert!(settled[w as usize]),
                    CycleDep::Inputs => {
                        prop_assert!(settled[g.a.index()]);
                        prop_assert!(settled[g.b.index()]);
                    }
                }
            }
            // Outputs settle at the end of the level (mirrors the
            // engines' end_level batch write).
            for &gi in &at_level {
                if !matches!(deps[gi], CycleDep::Absent) {
                    settled[c.gates()[gi].out.index()] = true;
                }
            }
        }
        prop_assert!(executed.iter().all(|&x| x), "every gate runs once");
    }

    /// Static-fitting dependencies (plain inputs everywhere) always
    /// yield the identity patch, and a buffer dirtied by a crossing
    /// cycle fully recovers on the next identity cycle.
    #[test]
    fn relevel_identity_on_static_fitting_deps(
        seed in 1u64..100_000,
        gates in 1usize..120,
    ) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            gates,
            ..RandomCircuitParams::default()
        };
        let c = random_circuit(&mut rng, params);
        let s = LayerSchedule::of(&c);

        let mut patch = CyclePatch::new();
        prop_assert!(!s.relevel_cycle(&c, |_| CycleDep::Inputs, &mut patch));
        prop_assert!(patch.is_identity());
        prop_assert_eq!(patch.levels(), 0);

        // Level-safe copies (source settles by the gate's static
        // level) also fit the static schedule — the engines only call
        // relevel when `copy_is_level_safe` fails somewhere.
        let safe_deps = |gi: usize| {
            let g = c.gates()[gi];
            if s.copy_is_level_safe(gi, g.a.index()) && gi % 2 == 0 {
                CycleDep::Copy(g.a.index() as u32)
            } else {
                CycleDep::Inputs
            }
        };
        prop_assert!(!s.relevel_cycle(&c, safe_deps, &mut patch));
        prop_assert!(patch.is_identity());
        for gi in 0..c.gates().len() {
            prop_assert!(!patch.is_moved(gi));
            prop_assert_eq!(
                patch.effective_gate_level(&s, gi),
                s.gate_level(gi)
            );
        }
    }

    /// Width metrics match a direct recount.
    #[test]
    fn width_metrics_are_exact(seed in 1u64..100_000, gates in 1usize..120) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            gates,
            ..RandomCircuitParams::default()
        };
        let c = random_circuit(&mut rng, params);
        let s = LayerSchedule::of(&c);
        let mut max_w = 0;
        let mut max_nl = 0;
        for level in 0..s.levels() {
            max_w = max_w.max(s.level_gates(level).len());
            max_nl = max_nl.max(s.level_split(level).1.len());
        }
        prop_assert_eq!(s.max_width() as usize, max_w);
        prop_assert_eq!(s.max_nonlinear_width() as usize, max_nl);
    }
}
