//! Property tests pinning every AES backend to the scalar
//! FIPS-197-validated reference, and the batch hash entry points to
//! their sequential counterparts.

use arm2gc_crypto::{Aes128, AesBackend, GarbleHash, Label};
use proptest::prelude::*;

fn non_scalar_backends() -> Vec<AesBackend> {
    AesBackend::ALL
        .into_iter()
        .filter(|b| *b != AesBackend::Scalar && b.is_available())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every backend encrypts random single blocks exactly like the
    /// scalar oracle, for random keys.
    #[test]
    fn backends_agree_on_random_blocks(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let oracle = Aes128::with_backend(key, AesBackend::Scalar);
        let want = oracle.encrypt_block(block);
        for backend in non_scalar_backends() {
            let aes = Aes128::with_backend(key, backend);
            prop_assert_eq!(aes.encrypt_block(block), want, "backend {}", backend);
        }
    }

    /// Batched encryption over ragged lengths (partial final pass)
    /// agrees with per-block scalar encryption on every backend.
    #[test]
    fn batch_agrees_with_sequential(
        key in any::<[u8; 16]>(),
        blocks in proptest::collection::vec(any::<u128>(), 0..40),
    ) {
        let oracle = Aes128::with_backend(key, AesBackend::Scalar);
        let want: Vec<u128> = blocks.iter().map(|&b| oracle.encrypt_u128(b)).collect();
        for backend in non_scalar_backends() {
            let aes = Aes128::with_backend(key, backend);
            let mut got = blocks.clone();
            aes.encrypt_u128s(&mut got);
            prop_assert_eq!(&got, &want, "backend {}", backend);

            let mut byte_blocks: Vec<[u8; 16]> =
                blocks.iter().map(|b| b.to_be_bytes()).collect();
            aes.encrypt_blocks(&mut byte_blocks);
            let got_bytes: Vec<u128> =
                byte_blocks.iter().map(|b| u128::from_be_bytes(*b)).collect();
            prop_assert_eq!(&got_bytes, &want, "backend {} (bytes)", backend);
        }
    }

    /// `hash_batch` is byte-identical to sequential `hash` for random
    /// labels and tweaks (tweaks drawn from an independent mix of the
    /// raw words).
    #[test]
    fn hash_batch_matches_hash(
        raw in proptest::collection::vec(any::<u128>(), 0..64),
        salt in any::<u64>(),
    ) {
        let h = GarbleHash::fixed();
        let inputs: Vec<(Label, u64)> = raw
            .into_iter()
            .map(|l| (Label::from_u128(l), (l >> 64) as u64 ^ salt))
            .collect();
        let want: Vec<Label> = inputs.iter().map(|&(l, t)| h.hash(l, t)).collect();
        prop_assert_eq!(h.hash_batch(&inputs), want);
    }

    /// `hash2_batch` is byte-identical to sequential `hash2`.
    #[test]
    fn hash2_batch_matches_hash2(
        raw_a in proptest::collection::vec(any::<u128>(), 0..48),
        raw_b in proptest::collection::vec(any::<u128>(), 0..48),
        salt in any::<u64>(),
    ) {
        let h = GarbleHash::fixed();
        let inputs: Vec<(Label, Label, u64)> = raw_a
            .iter()
            .zip(&raw_b)
            .enumerate()
            .map(|(i, (&a, &b))| {
                (Label::from_u128(a), Label::from_u128(b), salt ^ i as u64)
            })
            .collect();
        let want: Vec<Label> = inputs.iter().map(|&(a, b, t)| h.hash2(a, b, t)).collect();
        prop_assert_eq!(h.hash2_batch(&inputs), want);
    }
}
