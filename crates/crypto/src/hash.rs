//! Fixed-key hash used to encrypt garbled-table rows.

use crate::{Aes128, Label};

/// Reusable buffers for the batch hash entry points, so per-wavefront
/// flushes in the garbling hot loop do not allocate.
#[derive(Clone, Debug, Default)]
pub struct HashScratch {
    xs: Vec<u128>,
    ys: Vec<u128>,
}

/// The MMO-style correlation-robust hash from fixed-key AES:
/// `H(L, t) = AES_K(2L ⊕ t) ⊕ 2L` where `2L` is doubling in GF(2¹²⁸).
///
/// Both parties construct the same hash from a public fixed key, so no key
/// material needs to be exchanged (Bellare–Hoang–Keelveedhi–Rogaway).
///
/// The batch entry points ([`GarbleHash::hash_batch`],
/// [`GarbleHash::hash2_batch`]) compute the *same function* as their
/// per-call counterparts — the inputs are simply pushed through the
/// engine's wide AES pipeline together, so results are byte-identical
/// and only throughput changes. Labels and tweaks stay in their
/// canonical `u128` form end to end.
///
/// ```
/// use arm2gc_crypto::{GarbleHash, Label};
/// let h = GarbleHash::fixed();
/// let l = Label::from_u128(123);
/// assert_eq!(h.hash(l, 5), h.hash(l, 5));
/// assert_ne!(h.hash(l, 5), h.hash(l, 6));
/// assert_eq!(h.hash_batch(&[(l, 5)]), vec![h.hash(l, 5)]);
/// ```
#[derive(Clone, Debug)]
pub struct GarbleHash {
    aes: Aes128,
}

impl GarbleHash {
    /// The publicly agreed fixed key used by both parties.
    pub const FIXED_KEY: [u8; 16] = *b"ARM2GC-fixed-key";

    /// Constructs the hash with the standard fixed key.
    pub fn fixed() -> Self {
        Self::with_key(Self::FIXED_KEY)
    }

    /// Constructs the hash with an explicit key (tests, domain separation).
    pub fn with_key(key: [u8; 16]) -> Self {
        Self {
            aes: Aes128::new(key),
        }
    }

    /// Hashes one label under tweak `t` (the gate identifier).
    pub fn hash(&self, label: Label, tweak: u64) -> Label {
        let x = label.gf_double().to_u128() ^ tweak as u128;
        Label::from_u128(self.aes.encrypt_u128(x) ^ x)
    }

    /// Hashes two labels jointly (used by the classic 4-row garbling
    /// baseline): `H(A, B, t) = AES(4A ⊕ 2B ⊕ t) ⊕ 4A ⊕ 2B`.
    pub fn hash2(&self, a: Label, b: Label, tweak: u64) -> Label {
        let x = hash2_input(a, b, tweak);
        Label::from_u128(self.aes.encrypt_u128(x) ^ x)
    }

    /// [`GarbleHash::hash`] over a batch, one wide AES pass per 8
    /// inputs. Byte-identical to hashing each `(label, tweak)` in turn.
    pub fn hash_batch(&self, inputs: &[(Label, u64)]) -> Vec<Label> {
        let mut scratch = HashScratch::default();
        let mut out = Vec::new();
        self.hash_batch_with(inputs, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`GarbleHash::hash_batch`]: clears and fills
    /// `out`, reusing `scratch` buffers across calls.
    pub fn hash_batch_with(
        &self,
        inputs: &[(Label, u64)],
        scratch: &mut HashScratch,
        out: &mut Vec<Label>,
    ) {
        scratch.xs.clear();
        scratch.xs.extend(
            inputs
                .iter()
                .map(|&(l, t)| l.gf_double().to_u128() ^ t as u128),
        );
        self.finish_batch(scratch, out);
    }

    /// [`GarbleHash::hash2`] over a batch; byte-identical to hashing
    /// each `(a, b, tweak)` in turn.
    pub fn hash2_batch(&self, inputs: &[(Label, Label, u64)]) -> Vec<Label> {
        let mut scratch = HashScratch::default();
        let mut out = Vec::new();
        self.hash2_batch_with(inputs, &mut scratch, &mut out);
        out
    }

    /// Allocation-free [`GarbleHash::hash2_batch`].
    pub fn hash2_batch_with(
        &self,
        inputs: &[(Label, Label, u64)],
        scratch: &mut HashScratch,
        out: &mut Vec<Label>,
    ) {
        scratch.xs.clear();
        scratch
            .xs
            .extend(inputs.iter().map(|&(a, b, t)| hash2_input(a, b, t)));
        self.finish_batch(scratch, out);
    }

    /// Shared tail of the batch paths: encrypt `scratch.xs` wide and
    /// feed the MMO whitening `AES(x) ⊕ x` into `out`.
    fn finish_batch(&self, scratch: &mut HashScratch, out: &mut Vec<Label>) {
        scratch.ys.clear();
        scratch.ys.extend_from_slice(&scratch.xs);
        self.aes.encrypt_u128s(&mut scratch.ys);
        out.clear();
        out.extend(
            scratch
                .xs
                .iter()
                .zip(&scratch.ys)
                .map(|(&x, &y)| Label::from_u128(x ^ y)),
        );
    }

    /// Hashes an arbitrary byte string to a label with an MMO chain
    /// (`h ← AES_K(h ⊕ block) ⊕ block` over zero-padded 16-byte blocks,
    /// length-prefixed). Used to derive OT pads from group elements.
    pub fn hash_bytes(&self, data: &[u8], tweak: u64) -> Label {
        let mut h = Label::from_u128(tweak as u128 ^ ((data.len() as u128) << 64));
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            let b = Label::from_bytes(block);
            h = Label::from_u128(self.aes.encrypt_u128((h ^ b).to_u128())) ^ b;
        }
        h
    }
}

/// The AES input of [`GarbleHash::hash2`]: `4A ⊕ 2B ⊕ t` as a raw `u128`.
fn hash2_input(a: Label, b: Label, tweak: u64) -> u128 {
    a.gf_double().gf_double().to_u128() ^ b.gf_double().to_u128() ^ tweak as u128
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prg;

    #[test]
    fn tweak_separates() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([4; 16]);
        let l = Label::random(&mut prg);
        assert_ne!(h.hash(l, 0), h.hash(l, 1));
    }

    #[test]
    fn label_separates() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([4; 16]);
        let a = Label::random(&mut prg);
        let b = Label::random(&mut prg);
        assert_ne!(h.hash(a, 0), h.hash(b, 0));
    }

    #[test]
    fn hash2_argument_order_matters() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([8; 16]);
        let a = Label::random(&mut prg);
        let b = Label::random(&mut prg);
        assert_ne!(h.hash2(a, b, 0), h.hash2(b, a, 0));
    }

    #[test]
    fn both_parties_agree() {
        // Alice and Bob independently construct the fixed-key hash.
        let alice = GarbleHash::fixed();
        let bob = GarbleHash::fixed();
        let l = Label::from_u128(0xdead_beef);
        assert_eq!(alice.hash(l, 77), bob.hash(l, 77));
    }

    #[test]
    fn batch_equals_sequential() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([44; 16]);
        for n in [0usize, 1, 3, 8, 13, 40] {
            let inputs: Vec<(Label, u64)> = (0..n)
                .map(|i| (Label::random(&mut prg), prg.next_u64() ^ i as u64))
                .collect();
            let want: Vec<Label> = inputs.iter().map(|&(l, t)| h.hash(l, t)).collect();
            assert_eq!(h.hash_batch(&inputs), want, "n={n}");
        }
    }

    #[test]
    fn hash2_batch_equals_sequential() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([45; 16]);
        for n in [0usize, 1, 5, 8, 21] {
            let inputs: Vec<(Label, Label, u64)> = (0..n)
                .map(|_| {
                    (
                        Label::random(&mut prg),
                        Label::random(&mut prg),
                        prg.next_u64(),
                    )
                })
                .collect();
            let want: Vec<Label> = inputs.iter().map(|&(a, b, t)| h.hash2(a, b, t)).collect();
            assert_eq!(h.hash2_batch(&inputs), want, "n={n}");
        }
    }

    #[test]
    fn scratch_reuse_is_clean() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([46; 16]);
        let mut scratch = HashScratch::default();
        let mut out = Vec::new();
        // A big batch followed by a small one must not leak stale tails.
        let big: Vec<(Label, u64)> = (0..20).map(|i| (Label::random(&mut prg), i)).collect();
        h.hash_batch_with(&big, &mut scratch, &mut out);
        let small = [(Label::random(&mut prg), 7u64)];
        h.hash_batch_with(&small, &mut scratch, &mut out);
        assert_eq!(out, vec![h.hash(small[0].0, 7)]);
    }
}
