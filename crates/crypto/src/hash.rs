//! Fixed-key hash used to encrypt garbled-table rows.

use crate::{Aes128, Label};

/// The MMO-style correlation-robust hash from fixed-key AES:
/// `H(L, t) = AES_K(2L ⊕ t) ⊕ 2L` where `2L` is doubling in GF(2¹²⁸).
///
/// Both parties construct the same hash from a public fixed key, so no key
/// material needs to be exchanged (Bellare–Hoang–Keelveedhi–Rogaway).
///
/// ```
/// use arm2gc_crypto::{GarbleHash, Label};
/// let h = GarbleHash::fixed();
/// let l = Label::from_u128(123);
/// assert_eq!(h.hash(l, 5), h.hash(l, 5));
/// assert_ne!(h.hash(l, 5), h.hash(l, 6));
/// ```
#[derive(Clone, Debug)]
pub struct GarbleHash {
    aes: Aes128,
}

impl GarbleHash {
    /// The publicly agreed fixed key used by both parties.
    pub const FIXED_KEY: [u8; 16] = *b"ARM2GC-fixed-key";

    /// Constructs the hash with the standard fixed key.
    pub fn fixed() -> Self {
        Self::with_key(Self::FIXED_KEY)
    }

    /// Constructs the hash with an explicit key (tests, domain separation).
    pub fn with_key(key: [u8; 16]) -> Self {
        Self {
            aes: Aes128::new(key),
        }
    }

    /// Hashes one label under tweak `t` (the gate identifier).
    pub fn hash(&self, label: Label, tweak: u64) -> Label {
        let x = label.gf_double() ^ Label::from_u128(tweak as u128);
        Label::from_u128(self.aes.encrypt_u128(x.to_u128())) ^ x
    }

    /// Hashes two labels jointly (used by the classic 4-row garbling
    /// baseline): `H(A, B, t) = AES(4A ⊕ 2B ⊕ t) ⊕ 4A ⊕ 2B`.
    pub fn hash2(&self, a: Label, b: Label, tweak: u64) -> Label {
        let x = a.gf_double().gf_double() ^ b.gf_double() ^ Label::from_u128(tweak as u128);
        Label::from_u128(self.aes.encrypt_u128(x.to_u128())) ^ x
    }

    /// Hashes an arbitrary byte string to a label with an MMO chain
    /// (`h ← AES_K(h ⊕ block) ⊕ block` over zero-padded 16-byte blocks,
    /// length-prefixed). Used to derive OT pads from group elements.
    pub fn hash_bytes(&self, data: &[u8], tweak: u64) -> Label {
        let mut h = Label::from_u128(tweak as u128 ^ ((data.len() as u128) << 64));
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            let b = Label::from_bytes(block);
            h = Label::from_u128(self.aes.encrypt_u128((h ^ b).to_u128())) ^ b;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Prg;

    #[test]
    fn tweak_separates() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([4; 16]);
        let l = Label::random(&mut prg);
        assert_ne!(h.hash(l, 0), h.hash(l, 1));
    }

    #[test]
    fn label_separates() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([4; 16]);
        let a = Label::random(&mut prg);
        let b = Label::random(&mut prg);
        assert_ne!(h.hash(a, 0), h.hash(b, 0));
    }

    #[test]
    fn hash2_argument_order_matters() {
        let h = GarbleHash::fixed();
        let mut prg = Prg::from_seed([8; 16]);
        let a = Label::random(&mut prg);
        let b = Label::random(&mut prg);
        assert_ne!(h.hash2(a, b, 0), h.hash2(b, a, 0));
    }

    #[test]
    fn both_parties_agree() {
        // Alice and Bob independently construct the fixed-key hash.
        let alice = GarbleHash::fixed();
        let bob = GarbleHash::fixed();
        let l = Label::from_u128(0xdead_beef);
        assert_eq!(alice.hash(l, 77), bob.hash(l, 77));
    }
}
