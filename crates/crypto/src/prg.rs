//! AES-CTR pseudo-random generator.

use crate::Aes128;

/// Counter blocks buffered per refill — one full pass of the wide AES
/// pipeline.
const BATCH: usize = 8;

/// A deterministic pseudo-random generator: AES-128 in counter mode.
///
/// Used wherever the protocol needs reproducible randomness derived from a
/// seed — label generation, the IKNP column expansion, test fixtures.
///
/// Output blocks are produced eight counters at a time through the
/// engine's wide AES pipeline and served from an internal buffer; the
/// stream is the plain CTR sequence `AES_seed(0), AES_seed(1), …`
/// either way, so buffering is invisible to consumers (and to pinned
/// protocol transcripts).
///
/// ```
/// use arm2gc_crypto::Prg;
/// let mut a = Prg::from_seed([42; 16]);
/// let mut b = Prg::from_seed([42; 16]);
/// assert_eq!(a.next_u128(), b.next_u128());
/// ```
#[derive(Clone, Debug)]
pub struct Prg {
    aes: Aes128,
    counter: u128,
    buf: [u128; BATCH],
    pos: usize,
}

impl Prg {
    /// Creates a PRG keyed by `seed`.
    pub fn from_seed(seed: [u8; 16]) -> Self {
        Self {
            aes: Aes128::new(seed),
            counter: 0,
            buf: [0; BATCH],
            pos: BATCH,
        }
    }

    /// Creates a PRG seeded from OS entropy (`/dev/urandom` on unix).
    ///
    /// # Panics
    /// On platforms with no secure entropy source wired up (anything
    /// non-unix): a weak seed would silently break the protocol's
    /// security, so this fails loudly instead.
    pub fn from_entropy() -> Self {
        let mut seed = [0u8; 16];
        os_entropy(&mut seed);
        Self::from_seed(seed)
    }

    /// Next 128 pseudo-random bits.
    pub fn next_u128(&mut self) -> u128 {
        if self.pos == BATCH {
            self.refill();
        }
        let out = self.buf[self.pos];
        self.pos += 1;
        out
    }

    /// Encrypts the next [`BATCH`] counter blocks in one wide pass.
    fn refill(&mut self) {
        for (i, b) in self.buf.iter_mut().enumerate() {
            *b = self.counter.wrapping_add(i as u128);
        }
        self.aes.encrypt_u128s(&mut self.buf);
        self.counter = self.counter.wrapping_add(BATCH as u128);
        self.pos = 0;
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.next_u128() as u64
    }

    /// Next pseudo-random bit.
    pub fn next_bool(&mut self) -> bool {
        self.next_u128() & 1 == 1
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(16) {
            let block = self.next_u128().to_le_bytes();
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
    }
}

#[cfg(unix)]
fn os_entropy(buf: &mut [u8]) {
    use std::io::Read;
    let mut f = std::fs::File::open("/dev/urandom").expect("open /dev/urandom");
    f.read_exact(buf).expect("read OS entropy");
}

#[cfg(not(unix))]
fn os_entropy(_buf: &mut [u8]) {
    // No std-only source on this platform is cryptographically secure
    // (`RandomState`/SipHash is documented as not being one), and these
    // seeds key wire labels and the free-XOR delta. Fail loudly rather
    // than run the protocol with predictable randomness.
    unimplemented!(
        "no secure OS entropy source wired up for this platform; \
         use Prg::from_seed with externally sourced entropy"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AesBackend;

    #[test]
    fn deterministic_and_distinct() {
        let mut p = Prg::from_seed([1; 16]);
        let a = p.next_u128();
        let b = p.next_u128();
        assert_ne!(a, b);
        let mut q = Prg::from_seed([1; 16]);
        assert_eq!(q.next_u128(), a);
        assert_eq!(q.next_u128(), b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut p = Prg::from_seed([1; 16]);
        let mut q = Prg::from_seed([2; 16]);
        assert_ne!(p.next_u128(), q.next_u128());
    }

    #[test]
    fn fill_bytes_partial_block() {
        let mut p = Prg::from_seed([7; 16]);
        let mut buf = [0u8; 23];
        p.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    /// The buffered stream is exactly the unbuffered AES-CTR sequence
    /// computed by the scalar reference.
    #[test]
    fn buffering_matches_plain_ctr() {
        let seed = [42u8; 16];
        let oracle = Aes128::with_backend(seed, AesBackend::Scalar);
        let mut prg = Prg::from_seed(seed);
        for i in 0..3 * BATCH as u128 + 5 {
            assert_eq!(prg.next_u128(), oracle.encrypt_u128(i), "block {i}");
        }
    }

    /// Cloning mid-buffer continues the identical stream.
    #[test]
    fn clone_preserves_position() {
        let mut p = Prg::from_seed([9; 16]);
        for _ in 0..3 {
            p.next_u128();
        }
        let mut q = p.clone();
        for _ in 0..2 * BATCH {
            assert_eq!(p.next_u128(), q.next_u128());
        }
    }
}
