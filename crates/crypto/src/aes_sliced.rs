//! Portable bitsliced AES-128: eight blocks per pass, no table lookups.
//!
//! The state of eight blocks is held as eight 128-bit *bit planes*:
//! plane `b`, bit `8·j + k` is bit `b` of state byte `j` of block `k`
//! (`j` in FIPS column-major order, `k` the block lane). One logic
//! operation on a plane therefore touches all 128 state bytes at once.
//!
//! SubBytes is the Boyar–Peralta 32-AND combinational S-box circuit
//! ("A new combinational logic minimization technique with applications
//! to cryptology", 2009): a shared top linear layer, a GF(2⁴)-tower
//! inversion core, and a bottom linear layer that was *re-derived* here
//! by solving the 256-equation GF(2) system mapping the circuit's 18
//! nonlinear shares onto the reference S-box (the exhaustive
//! `sliced_sbox_matches_table` test is the proof). Because every step
//! is word-level AND/XOR/rotate with no data-dependent memory access,
//! this backend is constant-time — it removes the `SBOX[b as usize]`
//! cache-timing side channel the scalar path carries.
//!
//! The circuit is generic over the plane word ([`Word`]): plain `u128`
//! everywhere (fully portable safe Rust), an SSE2 `__m128i` word on
//! x86_64 (part of the *baseline* target — no runtime detection, one
//! vector op per plane operation), and a runtime-detected AVX2
//! `__m256i` word carrying two independent groups — 16 blocks per
//! pass. Every shift the circuit performs keeps its masked bits inside
//! 64-bit lanes, and every shuffle is 128-bit-lane-local, which is what
//! lets all three word types share one code path (lane-local vector
//! shifts and full-width `u128` shifts agree on all masked positions).
//!
//! Blocks are passed as `u128` in big-endian byte interpretation (state
//! byte `j` = bits `120 − 8j` …), the engine's canonical representation
//! — labels and tweaks never detour through `[u8; 16]` buffers here.

use core::ops::{BitAnd, BitOr, BitXor, Not};

/// Blocks processed per pass.
pub(crate) const LANES: usize = 8;

/// A plane word the bitsliced circuit runs on: one or more independent
/// 128-bit *groups*, each carrying 8 block lanes, processed by every
/// operation at once.
///
/// Implementations: `u128` (portable), and on x86_64 the SSE2 word
/// (one group; part of the baseline target) and the runtime-detected
/// AVX2 word (two groups — 16 blocks per pass). `shl`/`shr` may be
/// lane-local at 64-bit granularity — every use in this module masks
/// the result such that lane-local and full-width shifts coincide. All
/// other operations are per-group, which every shuffle used here
/// respects.
pub(crate) trait Word:
    Copy + BitXor<Output = Self> + BitAnd<Output = Self> + BitOr<Output = Self> + Not<Output = Self>
{
    /// Independent 128-bit block groups per word.
    const GROUPS: usize;
    /// Broadcasts a 128-bit constant (mask, key plane) to every group.
    fn splat(x: u128) -> Self;
    /// Builds pack word `k`: byte-swapped `blocks[k + 8g]` in group `g`
    /// (zero where out of range).
    fn gather(blocks: &[u128], k: usize) -> Self;
    /// Inverse of [`Word::gather`]: writes group `g` back to
    /// `blocks[k + 8g]` (byte-swapped) where in range.
    fn scatter(self, blocks: &mut [u128], k: usize);
    /// Left shift by `n < 64` bits (lane-local allowed; see above).
    fn shl(self, n: u32) -> Self;
    /// Right shift by `n < 64` bits (lane-local allowed; see above).
    fn shr(self, n: u32) -> Self;
    /// Rotate each group right by `32·k` bits (a dword permutation),
    /// `k` in 1..4.
    fn ror32(self, k: u32) -> Self;
    /// Rotates each 32-bit dword by 16 bits (swaps its two halfwords);
    /// `col_rot2` in the MixColumns tree. Vector words override this
    /// with a halfword shuffle.
    #[inline(always)]
    fn dword_ror16(self) -> Self {
        (self.shr(16) & Self::splat(LANE_LO2)) | (self.shl(16) & Self::splat(LANE_HI2))
    }
}

impl Word for u128 {
    const GROUPS: usize = 1;
    #[inline(always)]
    fn splat(x: u128) -> Self {
        x
    }
    #[inline(always)]
    fn gather(blocks: &[u128], k: usize) -> Self {
        blocks.get(k).map_or(0, |x| x.swap_bytes())
    }
    #[inline(always)]
    fn scatter(self, blocks: &mut [u128], k: usize) {
        if let Some(slot) = blocks.get_mut(k) {
            *slot = self.swap_bytes();
        }
    }
    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        self << n
    }
    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        self >> n
    }
    #[inline(always)]
    fn ror32(self, k: u32) -> Self {
        self.rotate_right(32 * k)
    }
}

/// `1` in every 32-bit column lane; multiplying a 32-bit pattern by this
/// replicates it across the four AES columns.
const REP32: u128 = 0x0000_0001_0000_0001_0000_0001_0000_0001;

// ShiftRows: row `r` occupies byte positions `4c + r`, i.e. the 8-bit
// groups at offsets `32c + 8r`.
const ROW0: u128 = REP32 * 0xFF;
const ROW1: u128 = REP32 * 0xFF00;
const ROW2: u128 = REP32 * 0xFF_0000;
const ROW3: u128 = REP32 * 0xFF00_0000;

// MixColumns byte rotations within each 32-bit column lane.
const LANE_LO1: u128 = REP32 * 0x00FF_FFFF;
const LANE_HI1: u128 = REP32 * 0xFF00_0000;
const LANE_LO2: u128 = REP32 * 0x0000_FFFF;
const LANE_HI2: u128 = REP32 * 0xFFFF_0000;

// Delta-swap masks for the pack/unpack transpose network: bit positions
// whose (position mod 8) has bit 0 / 1 / 2 set.
const SWAP0: u128 = 0xAAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA_AAAA;
const SWAP1: u128 = 0xCCCC_CCCC_CCCC_CCCC_CCCC_CCCC_CCCC_CCCC;
const SWAP2: u128 = 0xF0F0_F0F0_F0F0_F0F0_F0F0_F0F0_F0F0_F0F0;

/// The 11 round keys as bit planes, every key byte replicated across
/// the eight block lanes.
#[derive(Clone, Debug)]
pub(crate) struct SlicedKeys {
    rounds: [[u128; 8]; 11],
}

impl SlicedKeys {
    /// Bitslices an expanded scalar key schedule.
    pub(crate) fn new(round_keys: &[[u8; 16]; 11]) -> Self {
        let mut rounds = [[0u128; 8]; 11];
        for (planes, rk) in rounds.iter_mut().zip(round_keys) {
            for (j, &byte) in rk.iter().enumerate() {
                for (b, plane) in planes.iter_mut().enumerate() {
                    if (byte >> b) & 1 == 1 {
                        *plane |= 0xFFu128 << (8 * j);
                    }
                }
            }
        }
        Self { rounds }
    }
}

/// Swaps `r[i]`'s bits selected by `mask` with `r[j]`'s bits `shift`
/// positions lower (a delta swap across two words). The masks in use
/// keep all swapped bits within single bytes, so lane-local shifts are
/// exact.
#[inline(always)]
fn delta_swap<W: Word>(r: &mut [W; 8], i: usize, j: usize, mask: W, shift: u32) {
    let t = (r[i].shr(shift) ^ r[j]) & mask.shr(shift);
    r[j] = r[j] ^ t;
    r[i] = r[i] ^ t.shl(shift);
}

/// The 3-level delta-swap network transposing "register index" against
/// "bit index mod 8": starting from `r[k]` = byte-reversed block `k`,
/// it leaves `r[b]` holding bit `b` of every state byte (and, being an
/// involution, also inverts that).
#[inline(always)]
fn orthogonalize<W: Word>(r: &mut [W; 8]) {
    let m0 = W::splat(SWAP0);
    let m1 = W::splat(SWAP1);
    let m2 = W::splat(SWAP2);
    delta_swap(r, 0, 1, m0, 1);
    delta_swap(r, 2, 3, m0, 1);
    delta_swap(r, 4, 5, m0, 1);
    delta_swap(r, 6, 7, m0, 1);
    delta_swap(r, 0, 2, m1, 2);
    delta_swap(r, 1, 3, m1, 2);
    delta_swap(r, 4, 6, m1, 2);
    delta_swap(r, 5, 7, m1, 2);
    delta_swap(r, 0, 4, m2, 4);
    delta_swap(r, 1, 5, m2, 4);
    delta_swap(r, 2, 6, m2, 4);
    delta_swap(r, 3, 7, m2, 4);
}

/// Packs up to `8 · W::GROUPS` big-endian `u128` blocks into bit
/// planes. The gather byte-swaps each block so big-endian byte `j`
/// becomes the `j`-th lowest byte, matching the plane layout's byte
/// indexing.
#[inline(always)]
fn pack<W: Word>(blocks: &[u128]) -> [W; 8] {
    debug_assert!(blocks.len() <= LANES * W::GROUPS);
    let mut r: [W; 8] = core::array::from_fn(|k| W::gather(blocks, k));
    orthogonalize(&mut r);
    r
}

/// Unpacks bit planes back into big-endian `u128` blocks.
#[inline(always)]
fn unpack<W: Word>(planes: &[W; 8], blocks: &mut [u128]) {
    debug_assert!(blocks.len() <= LANES * W::GROUPS);
    let mut r = *planes;
    orthogonalize(&mut r);
    for (k, lane) in r.iter().enumerate() {
        lane.scatter(blocks, k);
    }
}

/// SubBytes on all 128 state bytes: the Boyar–Peralta 32-AND circuit.
///
/// Bit numbering follows the paper: `x0` is the byte's MSB (plane 7),
/// `x7` the LSB. The top (`y*`) layer is the shared linear expansion,
/// `t*`/`z*` the GF(2⁴)-tower inversion core, and the final `s*`
/// combinations are the bottom linear layer solved from the reference
/// S-box (unique solution of the 256-equation GF(2) system; verified
/// exhaustively by `sliced_sbox_matches_table`).
#[inline(always)]
fn sub_bytes<W: Word>(s: &mut [W; 8]) {
    let x0 = s[7];
    let x1 = s[6];
    let x2 = s[5];
    let x3 = s[4];
    let x4 = s[3];
    let x5 = s[2];
    let x6 = s[1];
    let x7 = s[0];

    // Top linear layer.
    let y14 = x3 ^ x5;
    let y13 = x0 ^ x6;
    let y9 = x0 ^ x3;
    let y8 = x0 ^ x5;
    let t0 = x1 ^ x2;
    let y1 = t0 ^ x7;
    let y4 = y1 ^ x3;
    let y12 = y13 ^ y14;
    let y2 = y1 ^ x0;
    let y5 = y1 ^ x6;
    let y3 = y5 ^ y8;
    let t1 = x4 ^ y12;
    let y15 = t1 ^ x5;
    let y20 = t1 ^ x1;
    let y6 = y15 ^ x7;
    let y10 = y15 ^ t0;
    let y11 = y20 ^ y9;
    let y7 = x7 ^ y11;
    let y17 = y10 ^ y11;
    let y19 = y10 ^ y8;
    let y16 = t0 ^ y11;
    let y21 = y13 ^ y16;
    let y18 = x0 ^ y16;

    // Nonlinear core: GF(2⁴)-tower inversion, 32 ANDs total.
    let t2 = y12 & y15;
    let t3 = y3 & y6;
    let t4 = t3 ^ t2;
    let t5 = y4 & x7;
    let t6 = t5 ^ t2;
    let t7 = y13 & y16;
    let t8 = y5 & y1;
    let t9 = t8 ^ t7;
    let t10 = y2 & y7;
    let t11 = t10 ^ t7;
    let t12 = y9 & y11;
    let t13 = y14 & y17;
    let t14 = t13 ^ t12;
    let t15 = y8 & y10;
    let t16 = t15 ^ t12;
    let t17 = t4 ^ t14;
    let t18 = t6 ^ t16;
    let t19 = t9 ^ t14;
    let t20 = t11 ^ t16;
    let t21 = t17 ^ y20;
    let t22 = t18 ^ y19;
    let t23 = t19 ^ y21;
    let t24 = t20 ^ y18;

    let t25 = t21 ^ t22;
    let t26 = t21 & t23;
    let t27 = t24 ^ t26;
    let t28 = t25 & t27;
    let t29 = t28 ^ t22;
    let t30 = t23 ^ t24;
    let t31 = t22 ^ t26;
    let t32 = t31 & t30;
    let t33 = t32 ^ t24;
    let t34 = t23 ^ t33;
    let t35 = t27 ^ t33;
    let t36 = t24 & t35;
    let t37 = t36 ^ t34;
    let t38 = t27 ^ t36;
    let t39 = t29 & t38;
    let t40 = t25 ^ t39;

    let t41 = t40 ^ t37;
    let t42 = t29 ^ t33;
    let t43 = t29 ^ t40;
    let t44 = t33 ^ t37;
    let t45 = t42 ^ t41;
    let z0 = t44 & y15;
    let z1 = t37 & y6;
    let z2 = t33 & x7;
    let z3 = t43 & y16;
    let z4 = t40 & y1;
    let z5 = t29 & y7;
    let z6 = t42 & y11;
    let z7 = t45 & y17;
    let z8 = t41 & y10;
    let z9 = t44 & y12;
    let z10 = t37 & y3;
    let z11 = t33 & y4;
    let z12 = t43 & y13;
    let z13 = t40 & y5;
    let z14 = t29 & y2;
    let z15 = t42 & y9;
    let z16 = t45 & y14;
    let z17 = t41 & y8;

    // Bottom linear layer (solved; shared pairs factored out).
    let p01 = z0 ^ z1;
    let p02 = z0 ^ z2;
    let p34 = z3 ^ z4;
    let p45 = z4 ^ z5;
    let p67 = z6 ^ z7;
    let p78 = z7 ^ z8;
    let p910 = z9 ^ z10;
    let p1213 = z12 ^ z13;
    let p1214 = z12 ^ z14;
    let p1516 = z15 ^ z16;
    let qa = p910 ^ p1516;
    let qb = p1213 ^ p1516;
    let s0 = p34 ^ p67 ^ qa;
    let s1 = !(p01 ^ p67 ^ qa);
    let s2 = !(p02 ^ (z6 ^ z8) ^ p1214 ^ (z15 ^ z17));
    let s3 = p01 ^ p34 ^ qa;
    let s4 = (z1 ^ z2) ^ p45 ^ qa;
    let s5 = p02 ^ p34 ^ p78 ^ (z10 ^ z11) ^ p1214 ^ p1516;
    let s6 = !(p45 ^ p78 ^ qb);
    let s7 = !(p02 ^ (z3 ^ z5) ^ qb);

    s[7] = s0;
    s[6] = s1;
    s[5] = s2;
    s[4] = s3;
    s[3] = s4;
    s[2] = s5;
    s[1] = s6;
    s[0] = s7;
}

/// ShiftRows: row `r` rotates left by `r` columns, which in plane space
/// is a 32·r-bit rotation of that row's masked byte groups (the masks
/// are 32-bit periodic, so masking commutes with the rotation).
#[inline(always)]
fn shift_rows<W: Word>(s: &mut [W; 8]) {
    let m0 = W::splat(ROW0);
    let m1 = W::splat(ROW1);
    let m2 = W::splat(ROW2);
    let m3 = W::splat(ROW3);
    for p in s.iter_mut() {
        *p = (*p & m0) | (p.ror32(1) & m1) | (p.ror32(2) & m2) | (p.ror32(3) & m3);
    }
}

/// Rotates each column's four bytes so byte `r` receives byte `r + 1`.
#[inline(always)]
fn col_rot1<W: Word>(p: W, lo: W, hi: W) -> W {
    (p.shr(8) & lo) | (p.shl(24) & hi)
}

/// MixColumns in plane space:
/// `s'_r = xtime(s_r ⊕ s_{r+1}) ⊕ s_{r+1} ⊕ s_{r+2} ⊕ s_{r+3}`.
///
/// Per plane: `t = p ⊕ rot1(p)` holds `s_r ⊕ s_{r+1}`, and since the
/// byte rotations are linear, `t ⊕ rot2(t) = p ⊕ rot1 ⊕ rot2 ⊕ rot3` —
/// the full column sum — from one more rotation (`rot2` is
/// [`Word::dword_ror16`]).
#[inline(always)]
fn mix_columns<W: Word>(s: &mut [W; 8]) {
    let lo1 = W::splat(LANE_LO1);
    let hi1 = W::splat(LANE_HI1);
    let mut t = [W::splat(0); 8];
    let mut acc = [W::splat(0); 8];
    for b in 0..8 {
        let p = s[b];
        let u = p ^ col_rot1(p, lo1, hi1);
        t[b] = u;
        acc[b] = u ^ u.dword_ror16() ^ p; // rot1 ⊕ rot2 ⊕ rot3
    }
    // xtime across planes: multiply `t` by x in GF(2⁸).
    let carry = t[7];
    s[0] = carry ^ acc[0];
    s[1] = t[0] ^ carry ^ acc[1];
    s[2] = t[1] ^ acc[2];
    s[3] = t[2] ^ carry ^ acc[3];
    s[4] = t[3] ^ carry ^ acc[4];
    s[5] = t[4] ^ acc[5];
    s[6] = t[5] ^ acc[6];
    s[7] = t[6] ^ acc[7];
}

#[inline(always)]
fn add_round_key<W: Word>(s: &mut [W; 8], rk: &[W; 8]) {
    for (p, &k) in s.iter_mut().zip(rk) {
        *p = *p ^ k;
    }
}

/// One full bitsliced encryption pass over packed planes, round keys
/// already materialised as plane words.
#[inline(always)]
fn encrypt_planes<W: Word>(rk: &[[W; 8]; 11], s: &mut [W; 8]) {
    add_round_key(s, &rk[0]);
    for key in &rk[1..10] {
        sub_bytes(s);
        shift_rows(s);
        mix_columns(s);
        add_round_key(s, key);
    }
    sub_bytes(s);
    shift_rows(s);
    add_round_key(s, &rk[10]);
}

/// Encrypts any number of big-endian `u128` blocks in place,
/// `8 · W::GROUPS` per bitsliced pass, with the circuit instantiated on
/// word type `W`. The round keys are materialised once for the whole
/// batch.
///
/// `inline(always)` so the whole circuit flattens into the caller: the
/// AVX2 instantiation must land inside a `#[target_feature(enable =
/// "avx2")]` function for the intrinsics to inline (see
/// `crate::x86::sliced_encrypt_avx2`).
#[inline(always)]
pub(crate) fn encrypt_wide_with<W: Word>(keys: &SlicedKeys, blocks: &mut [u128]) {
    let rk: [[W; 8]; 11] = core::array::from_fn(|r| keys.rounds[r].map(W::splat));
    for chunk in blocks.chunks_mut(LANES * W::GROUPS) {
        let mut s = pack::<W>(chunk);
        encrypt_planes(&rk, &mut s);
        unpack(&s, chunk);
    }
}

/// Encrypts any number of big-endian `u128` blocks in place using the
/// best plane word for this architecture: AVX2 (runtime-detected) or
/// SSE2 words on x86_64, portable `u128` words everywhere else.
pub(crate) fn encrypt_wide(keys: &SlicedKeys, blocks: &mut [u128]) {
    #[cfg(target_arch = "x86_64")]
    crate::x86::sliced_encrypt(keys, blocks);
    #[cfg(not(target_arch = "x86_64"))]
    encrypt_wide_with::<u128>(keys, blocks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aes::SBOX;

    #[test]
    fn pack_unpack_roundtrip() {
        for n in 1..=LANES {
            let blocks: Vec<u128> = (0..n)
                .map(|k| {
                    0x0123_4567_89AB_CDEF_u128.wrapping_mul(k as u128 + 3) ^ ((k as u128) << 99)
                })
                .collect();
            let planes = pack::<u128>(&blocks);
            let mut out = vec![0u128; n];
            unpack(&planes, &mut out);
            assert_eq!(out, blocks);
        }
    }

    /// `pack` really produces the documented plane layout: plane `b`,
    /// bit `8j + k` is bit `b` of big-endian byte `j` of block `k`.
    #[test]
    fn pack_matches_naive_layout() {
        let blocks: Vec<u128> = (0..LANES as u128)
            .map(|k| 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210u128.wrapping_mul(2 * k + 1))
            .collect();
        let planes = pack::<u128>(&blocks);
        for (b, plane) in planes.iter().enumerate() {
            let mut want = 0u128;
            for j in 0..16 {
                for (k, &x) in blocks.iter().enumerate() {
                    let byte = (x >> (120 - 8 * j)) as u8;
                    if (byte >> b) & 1 == 1 {
                        want |= 1 << (8 * j + k);
                    }
                }
            }
            assert_eq!(*plane, want, "plane {b}");
        }
    }

    /// The solved Boyar–Peralta circuit agrees with the table-derived
    /// S-box on every one of the 256 byte values (two 128-byte passes).
    #[test]
    fn sliced_sbox_matches_table() {
        for half in 0u32..2 {
            let blocks: Vec<u128> = (0..LANES as u32)
                .map(|k| {
                    let mut x = 0u128;
                    for j in 0..16 {
                        x = (x << 8) | (half * 128 + k * 16 + j) as u128;
                    }
                    x
                })
                .collect();
            let mut planes = pack::<u128>(&blocks);
            sub_bytes(&mut planes);
            let mut out = vec![0u128; LANES];
            unpack(&planes, &mut out);
            for (k, x) in out.iter().enumerate() {
                for j in 0..16 {
                    let v = (half as usize * 128 + k * 16 + j) as u8;
                    let got = (x >> (120 - 8 * j)) as u8;
                    assert_eq!(got, SBOX[v as usize], "S-box mismatch at {v:#04x}");
                }
            }
        }
    }

    /// The portable `u128` word and the architecture's dispatched word
    /// (SSE2/AVX2 on x86_64) run the identical circuit: same
    /// ciphertexts on ragged batches, including partial final passes.
    #[test]
    fn native_word_matches_portable_word() {
        let keys = SlicedKeys::new(&crate::aes::expand_key(*b"word-equivalence"));
        for n in 1..=4 * LANES {
            let blocks: Vec<u128> = (0..n as u128)
                .map(|k| 0xF0E1_D2C3_B495_A687_u128.wrapping_mul(k + 11) ^ (k << 77))
                .collect();
            let mut portable = blocks.clone();
            encrypt_wide_with::<u128>(&keys, &mut portable);
            let mut native = blocks.clone();
            encrypt_wide(&keys, &mut native);
            assert_eq!(portable, native, "n={n}");
        }
    }
}
