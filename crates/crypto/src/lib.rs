//! Cryptographic substrate for the ARM2GC reproduction.
//!
//! This crate provides everything the garbling engines need:
//!
//! * [`Label`] — 128-bit wire labels with the free-XOR convention
//!   (`X¹ = X⁰ ⊕ Δ`) and point-and-permute colour bits,
//! * [`Aes128`] — AES-128 as a batched multi-backend engine: a
//!   from-scratch scalar reference oracle, a portable constant-time
//!   bitsliced core (8 blocks per pass) and a runtime-detected AES-NI
//!   path, all byte-identical (see [`AesBackend`]),
//! * [`GarbleHash`] — the fixed-key MMO-style hash
//!   `H(L, t) = AES_K(2L ⊕ t) ⊕ 2L` used to encrypt garbled-table rows
//!   (Bellare et al., "Efficient garbling from a fixed-key blockcipher"),
//!   with batch entry points that hash a whole gate wavefront per call,
//! * [`Prg`] — an AES-CTR pseudo-random generator used for label
//!   generation and the IKNP OT extension, refilled a wide pass at a
//!   time.
//!
//! # Example
//!
//! ```
//! use arm2gc_crypto::{Delta, Label, Prg};
//!
//! let mut prg = Prg::from_seed([7u8; 16]);
//! let delta = Delta::random(&mut prg);
//! let zero = Label::random(&mut prg);
//! let one = zero ^ delta.as_label();
//! // The colour (permute) bits of the two labels always differ.
//! assert_ne!(zero.colour(), one.colour());
//! ```
//!
//! # Unsafe code
//!
//! The crate denies `unsafe_code` except in the private `x86`
//! module, the one place wrapping `std::arch` intrinsics; everything
//! else — including the constant-time bitsliced AES — is safe Rust.

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod aes;
mod aes_sliced;
mod backend;
mod hash;
mod label;
mod prg;
#[cfg(target_arch = "x86_64")]
mod x86;

pub use aes::Aes128;
pub use backend::{AesBackend, BackendError};
pub use hash::{GarbleHash, HashScratch};
pub use label::{Delta, Label};
pub use prg::Prg;
