//! Cryptographic substrate for the ARM2GC reproduction.
//!
//! This crate provides everything the garbling engines need:
//!
//! * [`Label`] — 128-bit wire labels with the free-XOR convention
//!   (`X¹ = X⁰ ⊕ Δ`) and point-and-permute colour bits,
//! * [`Aes128`] — a from-scratch software AES-128 block cipher,
//! * [`GarbleHash`] — the fixed-key MMO-style hash
//!   `H(L, t) = AES_K(2L ⊕ t) ⊕ 2L` used to encrypt garbled-table rows
//!   (Bellare et al., "Efficient garbling from a fixed-key blockcipher"),
//! * [`Prg`] — an AES-CTR pseudo-random generator used for label
//!   generation and the IKNP OT extension.
//!
//! # Example
//!
//! ```
//! use arm2gc_crypto::{Delta, Label, Prg};
//!
//! let mut prg = Prg::from_seed([7u8; 16]);
//! let delta = Delta::random(&mut prg);
//! let zero = Label::random(&mut prg);
//! let one = zero ^ delta.as_label();
//! // The colour (permute) bits of the two labels always differ.
//! assert_ne!(zero.colour(), one.colour());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod aes;
mod hash;
mod label;
mod prg;

pub use aes::Aes128;
pub use hash::GarbleHash;
pub use label::{Delta, Label};
pub use prg::Prg;
