//! Wire labels and the free-XOR global offset.

use core::fmt;
use core::ops::{BitXor, BitXorAssign};

use crate::Prg;

/// A 128-bit garbled-circuit wire label.
///
/// Under the free-XOR convention a wire's two labels are `X⁰` and
/// `X¹ = X⁰ ⊕ Δ`; the least significant bit doubles as the
/// point-and-permute *colour* bit (Δ has that bit set, so the two labels
/// of any wire always have opposite colours).
///
/// ```
/// use arm2gc_crypto::Label;
/// let a = Label::from_u128(0b10);
/// let b = Label::from_u128(0b11);
/// assert_eq!((a ^ b).colour(), true);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Label(u128);

impl Label {
    /// The all-zero label.
    pub const ZERO: Label = Label(0);

    /// Wraps a raw 128-bit value.
    pub const fn from_u128(v: u128) -> Self {
        Label(v)
    }

    /// Returns the raw 128-bit value.
    pub const fn to_u128(self) -> u128 {
        self.0
    }

    /// Draws a fresh uniformly random label from `prg`.
    pub fn random(prg: &mut Prg) -> Self {
        Label(prg.next_u128())
    }

    /// The point-and-permute colour bit (least significant bit).
    pub const fn colour(self) -> bool {
        self.0 & 1 == 1
    }

    /// Doubling in GF(2¹²⁸) modulo `x¹²⁸ + x⁷ + x² + x + 1`; used by the
    /// MMO garbling hash to make the label input non-malleable.
    pub const fn gf_double(self) -> Self {
        let carry = (self.0 >> 127) & 1;
        Label((self.0 << 1) ^ (carry * 0x87))
    }

    /// Serialises to 16 little-endian bytes.
    pub const fn to_bytes(self) -> [u8; 16] {
        self.0.to_le_bytes()
    }

    /// Deserialises from 16 little-endian bytes.
    pub const fn from_bytes(b: [u8; 16]) -> Self {
        Label(u128::from_le_bytes(b))
    }
}

impl BitXor for Label {
    type Output = Label;
    fn bitxor(self, rhs: Label) -> Label {
        Label(self.0 ^ rhs.0)
    }
}

impl BitXorAssign for Label {
    fn bitxor_assign(&mut self, rhs: Label) {
        self.0 ^= rhs.0;
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:032x})", self.0)
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// The garbler's global free-XOR offset Δ.
///
/// Its colour bit is always 1 so that `X⁰` and `X¹ = X⁰ ⊕ Δ` carry
/// opposite point-and-permute colours.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Delta(Label);

impl Delta {
    /// Draws a random Δ with the colour bit forced to 1.
    ///
    /// ```
    /// use arm2gc_crypto::{Delta, Prg};
    /// let mut prg = Prg::from_seed([1; 16]);
    /// assert!(Delta::random(&mut prg).as_label().colour());
    /// ```
    pub fn random(prg: &mut Prg) -> Self {
        Delta(Label(prg.next_u128() | 1))
    }

    /// Wraps an existing label, forcing the colour bit to 1.
    pub const fn from_label(l: Label) -> Self {
        Delta(Label(l.0 | 1))
    }

    /// The offset as a plain [`Label`].
    pub const fn as_label(self) -> Label {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xor_roundtrip() {
        let mut prg = Prg::from_seed([3; 16]);
        let a = Label::random(&mut prg);
        let b = Label::random(&mut prg);
        assert_eq!(a ^ b ^ b, a);
    }

    #[test]
    fn delta_colour_forced() {
        let mut prg = Prg::from_seed([9; 16]);
        for _ in 0..64 {
            assert!(Delta::random(&mut prg).as_label().colour());
        }
    }

    #[test]
    fn gf_double_known() {
        assert_eq!(Label::from_u128(1).gf_double().to_u128(), 2);
        assert_eq!(Label::from_u128(1u128 << 127).gf_double().to_u128(), 0x87);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut prg = Prg::from_seed([5; 16]);
        let l = Label::random(&mut prg);
        assert_eq!(Label::from_bytes(l.to_bytes()), l);
    }
}
