//! Software AES-128 built from first principles.
//!
//! The S-box and its inverse are *computed* (GF(2⁸) inversion followed by
//! the affine transform) rather than transcribed, so a single FIPS-197
//! test vector validates the whole construction. Only encryption is
//! implemented — garbling needs nothing else.

/// Multiply by `x` in GF(2⁸) with the AES reduction polynomial `0x11b`.
const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// Full GF(2⁸) product (schoolbook shift-and-add).
const fn gmul(a: u8, b: u8) -> u8 {
    let mut acc = 0u8;
    let mut a = a;
    let mut b = b;
    let mut i = 0;
    while i < 8 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    acc
}

/// GF(2⁸) inverse via `a^254` (square-and-multiply); `inv(0) = 0` as in AES.
const fn ginv(a: u8) -> u8 {
    // a^254 = a^(2+4+8+16+32+64+128)
    let a2 = gmul(a, a);
    let a4 = gmul(a2, a2);
    let a8 = gmul(a4, a4);
    let a16 = gmul(a8, a8);
    let a32 = gmul(a16, a16);
    let a64 = gmul(a32, a32);
    let a128 = gmul(a64, a64);
    gmul(
        a128,
        gmul(a64, gmul(a32, gmul(a16, gmul(a8, gmul(a4, a2))))),
    )
}

/// AES affine transform applied after inversion.
const fn affine(a: u8) -> u8 {
    a ^ a.rotate_left(1) ^ a.rotate_left(2) ^ a.rotate_left(3) ^ a.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = affine(ginv(i as u8));
        i += 1;
    }
    t
}

/// The AES S-box, derived at compile time.
pub(crate) const SBOX: [u8; 256] = build_sbox();

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// An expanded AES-128 key schedule supporting block encryption.
///
/// ```
/// use arm2gc_crypto::Aes128;
/// let aes = Aes128::new([0u8; 16]);
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_ne!(ct, [0u8; 16]);
/// ```
#[derive(Clone, Debug)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl Aes128 {
    /// Expands `key` into the 11 round keys.
    pub fn new(key: [u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i].copy_from_slice(chunk);
        }
        for i in 4..44 {
            let mut t = w[i - 1];
            if i % 4 == 0 {
                t.rotate_left(1);
                for b in &mut t {
                    *b = SBOX[*b as usize];
                }
                t[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ t[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Self { round_keys }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        let mut s = block;
        add_round_key(&mut s, &self.round_keys[0]);
        for r in 1..10 {
            sub_bytes(&mut s);
            shift_rows(&mut s);
            mix_columns(&mut s);
            add_round_key(&mut s, &self.round_keys[r]);
        }
        sub_bytes(&mut s);
        shift_rows(&mut s);
        add_round_key(&mut s, &self.round_keys[10]);
        s
    }

    /// Encrypts a block given as a `u128` (big-endian byte order).
    pub fn encrypt_u128(&self, block: u128) -> u128 {
        u128::from_be_bytes(self.encrypt_block(block.to_be_bytes()))
    }
}

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for (b, k) in s.iter_mut().zip(rk) {
        *b ^= k;
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State layout: column-major, `s[4c + r]` is row `r`, column `c`.
fn shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[4 * c + r] = orig[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        s[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sbox_known_entries() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    /// FIPS-197 Appendix C.1 test vector.
    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let aes = Aes128::new(key);
        let ct = aes.encrypt_block(pt);
        assert_eq!(
            ct,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
    }

    /// FIPS-197 Appendix B vector (different key/plaintext).
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let ct = Aes128::new(key).encrypt_block(pt);
        assert_eq!(
            ct,
            [
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn gmul_agrees_with_xtime() {
        for a in 0u16..256 {
            assert_eq!(gmul(a as u8, 2), xtime(a as u8));
            assert_eq!(gmul(a as u8, 1), a as u8);
        }
    }

    #[test]
    fn ginv_is_inverse() {
        for a in 1u16..256 {
            assert_eq!(gmul(a as u8, ginv(a as u8)), 1, "a={a}");
        }
        assert_eq!(ginv(0), 0);
    }
}
