//! AES-128 built from first principles, with a batched multi-backend
//! engine on top.
//!
//! The scalar reference implementation computes the S-box and its
//! inverse (GF(2⁸) inversion followed by the affine transform) rather
//! than transcribing them, so a single FIPS-197 test vector validates
//! the whole construction. Only encryption is implemented — garbling
//! needs nothing else.
//!
//! [`Aes128`] wraps that reference in a pluggable engine
//! ([`AesBackend`]): the portable bitsliced core in
//! [`crate::aes_sliced`] and the hardware path in [`crate::x86`]
//! both produce byte-identical output, dispatch is decided once at
//! construction, and the batch entry points ([`Aes128::encrypt_blocks`],
//! [`Aes128::encrypt_u128s`]) push many blocks through one wide pass.

use crate::backend::AesBackend;

/// Multiply by `x` in GF(2⁸) with the AES reduction polynomial `0x11b`.
const fn xtime(a: u8) -> u8 {
    (a << 1) ^ (((a >> 7) & 1) * 0x1b)
}

/// Full GF(2⁸) product (schoolbook shift-and-add).
pub(crate) const fn gmul(a: u8, b: u8) -> u8 {
    let mut acc = 0u8;
    let mut a = a;
    let mut b = b;
    let mut i = 0;
    while i < 8 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a = xtime(a);
        b >>= 1;
        i += 1;
    }
    acc
}

/// GF(2⁸) inverse via `a^254` (square-and-multiply); `inv(0) = 0` as in AES.
const fn ginv(a: u8) -> u8 {
    // a^254 = a^(2+4+8+16+32+64+128)
    let a2 = gmul(a, a);
    let a4 = gmul(a2, a2);
    let a8 = gmul(a4, a4);
    let a16 = gmul(a8, a8);
    let a32 = gmul(a16, a16);
    let a64 = gmul(a32, a32);
    let a128 = gmul(a64, a64);
    gmul(
        a128,
        gmul(a64, gmul(a32, gmul(a16, gmul(a8, gmul(a4, a2))))),
    )
}

/// AES affine transform applied after inversion.
const fn affine(a: u8) -> u8 {
    a ^ a.rotate_left(1) ^ a.rotate_left(2) ^ a.rotate_left(3) ^ a.rotate_left(4) ^ 0x63
}

const fn build_sbox() -> [u8; 256] {
    let mut t = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        t[i] = affine(ginv(i as u8));
        i += 1;
    }
    t
}

/// The AES S-box, derived at compile time. Used only by the scalar
/// reference path and the key schedule — the hot paths run the
/// table-free bitsliced or hardware backends.
pub(crate) const SBOX: [u8; 256] = build_sbox();

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Expands `key` into the 11 round keys (FIPS-197 §5.2).
pub(crate) fn expand_key(key: [u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    for i in 4..44 {
        let mut t = w[i - 1];
        if i % 4 == 0 {
            t.rotate_left(1);
            for b in &mut t {
                *b = SBOX[*b as usize];
            }
            t[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ t[j];
        }
    }
    let mut round_keys = [[0u8; 16]; 11];
    for (r, rk) in round_keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
        }
    }
    round_keys
}

/// Encrypts one block with the byte-oriented reference rounds.
fn scalar_encrypt(round_keys: &[[u8; 16]; 11], block: [u8; 16]) -> [u8; 16] {
    let mut s = block;
    add_round_key(&mut s, &round_keys[0]);
    for rk in &round_keys[1..10] {
        sub_bytes(&mut s);
        shift_rows(&mut s);
        mix_columns(&mut s);
        add_round_key(&mut s, rk);
    }
    sub_bytes(&mut s);
    shift_rows(&mut s);
    add_round_key(&mut s, &round_keys[10]);
    s
}

/// The per-backend state the engine dispatches on.
#[derive(Clone, Debug)]
enum Engine {
    /// Byte-oriented reference rounds.
    Scalar,
    /// Bitsliced round-key planes (8 blocks per pass).
    Sliced(Box<crate::aes_sliced::SlicedKeys>),
    /// Hardware AES; round keys are loaded from the scalar schedule at
    /// each batch call (a handful of L1 loads).
    #[cfg(target_arch = "x86_64")]
    AesNi,
}

/// An expanded AES-128 key schedule supporting block encryption.
///
/// Construction picks a backend once ([`AesBackend::detect`] for
/// [`Aes128::new`]); every backend computes the identical FIPS-197
/// function, so protocol bytes never depend on the machine.
///
/// ```
/// use arm2gc_crypto::Aes128;
/// let aes = Aes128::new([0u8; 16]);
/// let ct = aes.encrypt_block([0u8; 16]);
/// assert_ne!(ct, [0u8; 16]);
/// ```
#[derive(Clone, Debug)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
    engine: Engine,
}

impl Aes128 {
    /// Expands `key` and selects the best available backend
    /// (AES-NI → bitsliced; see [`AesBackend::detect`]).
    pub fn new(key: [u8; 16]) -> Self {
        Self::with_backend(key, AesBackend::detect())
    }

    /// Expands `key` for an explicitly chosen backend (tests, benches,
    /// the `ARM2GC_AES_BACKEND` plumbing).
    ///
    /// # Panics
    /// Panics if `backend` is not available on this machine.
    pub fn with_backend(key: [u8; 16], backend: AesBackend) -> Self {
        assert!(
            backend.is_available(),
            "AES backend {backend} is not available on this machine"
        );
        let round_keys = expand_key(key);
        let engine = match backend {
            AesBackend::Scalar => Engine::Scalar,
            AesBackend::Sliced => {
                Engine::Sliced(Box::new(crate::aes_sliced::SlicedKeys::new(&round_keys)))
            }
            #[cfg(target_arch = "x86_64")]
            AesBackend::AesNi => Engine::AesNi,
            #[cfg(not(target_arch = "x86_64"))]
            AesBackend::AesNi => unreachable!("availability checked above"),
        };
        Self { round_keys, engine }
    }

    /// Which backend this engine dispatches to.
    pub fn backend(&self) -> AesBackend {
        match self.engine {
            Engine::Scalar => AesBackend::Scalar,
            Engine::Sliced(_) => AesBackend::Sliced,
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi => AesBackend::AesNi,
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: [u8; 16]) -> [u8; 16] {
        match &self.engine {
            Engine::Scalar => scalar_encrypt(&self.round_keys, block),
            Engine::Sliced(keys) => {
                let mut b = [u128::from_be_bytes(block)];
                crate::aes_sliced::encrypt_wide(keys, &mut b);
                b[0].to_be_bytes()
            }
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi => {
                let mut b = [block];
                crate::x86::encrypt_blocks(&self.round_keys, &mut b);
                b[0]
            }
        }
    }

    /// Encrypts every block in place, pushing them through the
    /// backend's widest pipeline (8 blocks per pass for the bitsliced
    /// and AES-NI engines). Equivalent to — and byte-identical with —
    /// calling [`Aes128::encrypt_block`] on each block.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        match &self.engine {
            Engine::Scalar => {
                for b in blocks.iter_mut() {
                    *b = scalar_encrypt(&self.round_keys, *b);
                }
            }
            Engine::Sliced(keys) => {
                for chunk in blocks.chunks_mut(crate::aes_sliced::LANES) {
                    let mut lanes = [0u128; crate::aes_sliced::LANES];
                    for (lane, b) in lanes.iter_mut().zip(chunk.iter()) {
                        *lane = u128::from_be_bytes(*b);
                    }
                    crate::aes_sliced::encrypt_wide(keys, &mut lanes[..chunk.len()]);
                    for (b, lane) in chunk.iter_mut().zip(lanes.iter()) {
                        *b = lane.to_be_bytes();
                    }
                }
            }
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi => crate::x86::encrypt_blocks(&self.round_keys, blocks),
        }
    }

    /// Encrypts a batch of blocks held as `u128` (big-endian byte
    /// order, matching [`Aes128::encrypt_u128`]) in place.
    ///
    /// This is the engine's canonical hot-path entry: labels, tweaks
    /// and PRG counters all live as `u128`, and the bitsliced backend
    /// packs its bit planes straight from these words without a detour
    /// through `[u8; 16]` buffers.
    pub fn encrypt_u128s(&self, blocks: &mut [u128]) {
        match &self.engine {
            Engine::Scalar => {
                for b in blocks.iter_mut() {
                    *b = u128::from_be_bytes(scalar_encrypt(&self.round_keys, b.to_be_bytes()));
                }
            }
            Engine::Sliced(keys) => crate::aes_sliced::encrypt_wide(keys, blocks),
            #[cfg(target_arch = "x86_64")]
            Engine::AesNi => crate::x86::encrypt_u128s(&self.round_keys, blocks),
        }
    }

    /// Encrypts a block given as a `u128` (big-endian byte order).
    pub fn encrypt_u128(&self, block: u128) -> u128 {
        let mut b = [block];
        self.encrypt_u128s(&mut b);
        b[0]
    }
}

fn add_round_key(s: &mut [u8; 16], rk: &[u8; 16]) {
    for (b, k) in s.iter_mut().zip(rk) {
        *b ^= k;
    }
}

fn sub_bytes(s: &mut [u8; 16]) {
    for b in s.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State layout: column-major, `s[4c + r]` is row `r`, column `c`.
fn shift_rows(s: &mut [u8; 16]) {
    let orig = *s;
    for r in 1..4 {
        for c in 0..4 {
            s[4 * c + r] = orig[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(s: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [s[4 * c], s[4 * c + 1], s[4 * c + 2], s[4 * c + 3]];
        s[4 * c] = gmul(col[0], 2) ^ gmul(col[1], 3) ^ col[2] ^ col[3];
        s[4 * c + 1] = col[0] ^ gmul(col[1], 2) ^ gmul(col[2], 3) ^ col[3];
        s[4 * c + 2] = col[0] ^ col[1] ^ gmul(col[2], 2) ^ gmul(col[3], 3);
        s[4 * c + 3] = gmul(col[0], 3) ^ col[1] ^ col[2] ^ gmul(col[3], 2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backends() -> Vec<AesBackend> {
        AesBackend::ALL
            .into_iter()
            .filter(|b| b.is_available())
            .collect()
    }

    #[test]
    fn sbox_known_entries() {
        assert_eq!(SBOX[0x00], 0x63);
        assert_eq!(SBOX[0x01], 0x7c);
        assert_eq!(SBOX[0x53], 0xed);
        assert_eq!(SBOX[0xff], 0x16);
    }

    #[test]
    fn sbox_is_a_permutation() {
        let mut seen = [false; 256];
        for &v in SBOX.iter() {
            assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
    }

    /// FIPS-197 Appendix C.1 test vector, on every available backend.
    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = core::array::from_fn(|i| i as u8);
        let pt: [u8; 16] = core::array::from_fn(|i| (i as u8) * 0x11);
        let want = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        for backend in backends() {
            let aes = Aes128::with_backend(key, backend);
            assert_eq!(aes.encrypt_block(pt), want, "backend {backend}");
        }
    }

    /// FIPS-197 Appendix B vector (different key/plaintext).
    #[test]
    fn fips197_appendix_b() {
        let key = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let want = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        for backend in backends() {
            let aes = Aes128::with_backend(key, backend);
            assert_eq!(aes.encrypt_block(pt), want, "backend {backend}");
        }
    }

    /// Batches of every length agree with per-block encryption, and all
    /// backends agree with the scalar oracle.
    #[test]
    fn batches_match_scalar_oracle() {
        let key = *b"0123456789abcdef";
        let oracle = Aes128::with_backend(key, AesBackend::Scalar);
        for backend in backends() {
            let aes = Aes128::with_backend(key, backend);
            for n in [0usize, 1, 2, 7, 8, 9, 16, 25] {
                let blocks: Vec<[u8; 16]> =
                    (0..n).map(|i| [(i as u8).wrapping_mul(37); 16]).collect();
                let want: Vec<[u8; 16]> = blocks.iter().map(|&b| oracle.encrypt_block(b)).collect();
                let mut got = blocks.clone();
                aes.encrypt_blocks(&mut got);
                assert_eq!(got, want, "backend {backend}, n={n}");

                let mut got_u = vec![0u128; n];
                for (g, b) in got_u.iter_mut().zip(&blocks) {
                    *g = u128::from_be_bytes(*b);
                }
                aes.encrypt_u128s(&mut got_u);
                let want_u: Vec<u128> = want.iter().map(|&b| u128::from_be_bytes(b)).collect();
                assert_eq!(got_u, want_u, "backend {backend} (u128), n={n}");
            }
        }
    }

    #[test]
    fn gmul_agrees_with_xtime() {
        for a in 0u16..256 {
            assert_eq!(gmul(a as u8, 2), xtime(a as u8));
            assert_eq!(gmul(a as u8, 1), a as u8);
        }
    }

    #[test]
    fn ginv_is_inverse() {
        for a in 1u16..256 {
            assert_eq!(gmul(a as u8, ginv(a as u8)), 1, "a={a}");
        }
        assert_eq!(ginv(0), 0);
    }
}
