//! Runtime selection of the AES engine backend.
//!
//! The block-encryption core behind [`crate::Aes128`] has three
//! interchangeable implementations. All of them compute the exact same
//! function — FIPS-197 AES-128 encryption — so every byte the protocol
//! produces is identical regardless of which backend ran; they differ
//! only in throughput and side-channel profile:
//!
//! * **Scalar** — the from-first-principles byte-oriented reference
//!   (`SBOX` table lookups, per-byte GF(2⁸) arithmetic). Kept as the
//!   oracle the other backends are tested against.
//! * **Sliced** — a portable bitsliced engine that encrypts eight
//!   blocks per pass using word-parallel GF operations and **no table
//!   lookups**, removing the S-box cache-timing side channel from the
//!   hot paths.
//! * **AesNi** — hardware AES via `std::arch::x86_64` intrinsics,
//!   selected only when the CPU reports the `aes` feature at runtime.
//!
//! Selection order is AES-NI → sliced; the scalar path is never chosen
//! automatically. The `ARM2GC_AES_BACKEND` environment variable
//! (`scalar`, `sliced`, `aesni` or `auto`) overrides detection — CI uses
//! it to keep the portable sliced arm green on hardware that would
//! otherwise always dispatch to AES-NI.

use std::fmt;
use std::sync::OnceLock;

/// Which AES implementation an [`crate::Aes128`] engine dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AesBackend {
    /// Byte-oriented software reference (table-lookup S-box).
    Scalar,
    /// Portable bitsliced engine: eight blocks per pass, constant-time.
    Sliced,
    /// Hardware AES-NI (x86_64 only, runtime-detected).
    AesNi,
}

impl AesBackend {
    /// Every backend, in preference order (fastest first).
    pub const ALL: [AesBackend; 3] = [AesBackend::AesNi, AesBackend::Sliced, AesBackend::Scalar];

    /// Picks the backend for this process: the `ARM2GC_AES_BACKEND`
    /// override if set, otherwise AES-NI when the CPU supports it and
    /// the portable sliced engine everywhere else.
    ///
    /// The choice (including the environment read) is made once and
    /// cached for the lifetime of the process.
    ///
    /// # Panics
    /// Panics on an unknown `ARM2GC_AES_BACKEND` value, or when it
    /// names a backend this machine cannot run — a silent fallback
    /// would defeat the point of forcing a backend.
    pub fn detect() -> Self {
        static CHOICE: OnceLock<AesBackend> = OnceLock::new();
        *CHOICE.get_or_init(Self::choose)
    }

    fn choose() -> Self {
        match std::env::var("ARM2GC_AES_BACKEND").ok().as_deref() {
            Some("scalar") => AesBackend::Scalar,
            Some("sliced") => AesBackend::Sliced,
            Some("aesni") => {
                assert!(
                    AesBackend::AesNi.is_available(),
                    "ARM2GC_AES_BACKEND=aesni but this CPU has no AES-NI support"
                );
                AesBackend::AesNi
            }
            Some("auto") | None => {
                if AesBackend::AesNi.is_available() {
                    AesBackend::AesNi
                } else {
                    AesBackend::Sliced
                }
            }
            Some(other) => panic!(
                "unknown ARM2GC_AES_BACKEND value {other:?} \
                 (expected scalar, sliced, aesni or auto)"
            ),
        }
    }

    /// Whether this backend can run on the current machine.
    pub fn is_available(self) -> bool {
        match self {
            AesBackend::Scalar | AesBackend::Sliced => true,
            #[cfg(target_arch = "x86_64")]
            AesBackend::AesNi => crate::x86::available(),
            #[cfg(not(target_arch = "x86_64"))]
            AesBackend::AesNi => false,
        }
    }

    /// Stable lowercase name (matches the `ARM2GC_AES_BACKEND` values).
    pub fn name(self) -> &'static str {
        match self {
            AesBackend::Scalar => "scalar",
            AesBackend::Sliced => "sliced",
            AesBackend::AesNi => "aesni",
        }
    }
}

impl fmt::Display for AesBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_backends_always_available() {
        assert!(AesBackend::Scalar.is_available());
        assert!(AesBackend::Sliced.is_available());
    }

    #[test]
    fn detect_returns_an_available_backend() {
        assert!(AesBackend::detect().is_available());
    }

    #[test]
    fn names_roundtrip() {
        for b in AesBackend::ALL {
            assert_eq!(format!("{b}"), b.name());
        }
    }
}
