//! Runtime selection of the AES engine backend.
//!
//! The block-encryption core behind [`crate::Aes128`] has three
//! interchangeable implementations. All of them compute the exact same
//! function — FIPS-197 AES-128 encryption — so every byte the protocol
//! produces is identical regardless of which backend ran; they differ
//! only in throughput and side-channel profile:
//!
//! * **Scalar** — the from-first-principles byte-oriented reference
//!   (`SBOX` table lookups, per-byte GF(2⁸) arithmetic). Kept as the
//!   oracle the other backends are tested against.
//! * **Sliced** — a portable bitsliced engine that encrypts eight
//!   blocks per pass using word-parallel GF operations and **no table
//!   lookups**, removing the S-box cache-timing side channel from the
//!   hot paths.
//! * **AesNi** — hardware AES via `std::arch::x86_64` intrinsics,
//!   selected only when the CPU reports the `aes` feature at runtime.
//!
//! Selection order is AES-NI → sliced; the scalar path is never chosen
//! automatically. The `ARM2GC_AES_BACKEND` environment variable
//! (`scalar`, `sliced`, `aesni` or `auto`) overrides detection — CI uses
//! it to keep the portable sliced arm green on hardware that would
//! otherwise always dispatch to AES-NI.

use std::fmt;
use std::sync::OnceLock;

/// Why an `ARM2GC_AES_BACKEND` override could not be honoured. The
/// override exists to *force* a backend, so an unusable value must be
/// an error the caller sees — silently falling back to another engine
/// would defeat the point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The override named no known backend.
    Unknown(String),
    /// The override named a backend this machine cannot run.
    Unavailable(AesBackend),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unknown(v) => write!(
                f,
                "unknown ARM2GC_AES_BACKEND value {v:?} \
                 (expected scalar, sliced, aesni or auto)"
            ),
            BackendError::Unavailable(b) => write!(
                f,
                "ARM2GC_AES_BACKEND={b} but this machine cannot run the {b} backend"
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// Which AES implementation an [`crate::Aes128`] engine dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AesBackend {
    /// Byte-oriented software reference (table-lookup S-box).
    Scalar,
    /// Portable bitsliced engine: eight blocks per pass, constant-time.
    Sliced,
    /// Hardware AES-NI (x86_64 only, runtime-detected).
    AesNi,
}

impl AesBackend {
    /// Every backend, in preference order (fastest first).
    pub const ALL: [AesBackend; 3] = [AesBackend::AesNi, AesBackend::Sliced, AesBackend::Scalar];

    /// Picks the backend for this process: the `ARM2GC_AES_BACKEND`
    /// override if set, otherwise AES-NI when the CPU supports it and
    /// the portable sliced engine everywhere else.
    ///
    /// The choice (including the environment read) is made once and
    /// cached for the lifetime of the process.
    ///
    /// # Panics
    /// Panics on an unknown `ARM2GC_AES_BACKEND` value, or when it
    /// names a backend this machine cannot run — a silent fallback
    /// would defeat the point of forcing a backend. Use
    /// [`AesBackend::try_detect`] to handle the error instead.
    pub fn detect() -> Self {
        static CHOICE: OnceLock<AesBackend> = OnceLock::new();
        *CHOICE.get_or_init(|| Self::try_detect().unwrap_or_else(|e| panic!("{e}")))
    }

    /// The fallible core of [`AesBackend::detect`]: reads
    /// `ARM2GC_AES_BACKEND` and resolves it via
    /// [`AesBackend::from_override`] (auto-detecting when unset).
    /// Uncached — `detect` caches the first success for the process.
    ///
    /// # Errors
    /// [`BackendError`] when the override names no known backend or one
    /// this machine cannot run.
    pub fn try_detect() -> Result<Self, BackendError> {
        match std::env::var("ARM2GC_AES_BACKEND").ok() {
            Some(v) => Self::from_override(&v),
            None => Ok(Self::auto()),
        }
    }

    /// Resolves one `ARM2GC_AES_BACKEND` value (`scalar`, `sliced`,
    /// `aesni` or `auto`), checking that the named backend can actually
    /// run here.
    ///
    /// # Errors
    /// [`BackendError::Unknown`] for an unrecognised value,
    /// [`BackendError::Unavailable`] when the machine cannot run the
    /// named backend.
    pub fn from_override(value: &str) -> Result<Self, BackendError> {
        let backend = match value {
            "scalar" => AesBackend::Scalar,
            "sliced" => AesBackend::Sliced,
            "aesni" => AesBackend::AesNi,
            "auto" => return Ok(Self::auto()),
            other => return Err(BackendError::Unknown(other.to_string())),
        };
        if backend.is_available() {
            Ok(backend)
        } else {
            Err(BackendError::Unavailable(backend))
        }
    }

    /// The automatic choice: AES-NI when the CPU supports it, the
    /// portable sliced engine everywhere else (never scalar).
    fn auto() -> Self {
        if AesBackend::AesNi.is_available() {
            AesBackend::AesNi
        } else {
            AesBackend::Sliced
        }
    }

    /// Whether this backend can run on the current machine.
    pub fn is_available(self) -> bool {
        match self {
            AesBackend::Scalar | AesBackend::Sliced => true,
            #[cfg(target_arch = "x86_64")]
            AesBackend::AesNi => crate::x86::available(),
            #[cfg(not(target_arch = "x86_64"))]
            AesBackend::AesNi => false,
        }
    }

    /// Stable lowercase name (matches the `ARM2GC_AES_BACKEND` values).
    pub fn name(self) -> &'static str {
        match self {
            AesBackend::Scalar => "scalar",
            AesBackend::Sliced => "sliced",
            AesBackend::AesNi => "aesni",
        }
    }
}

impl fmt::Display for AesBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn portable_backends_always_available() {
        assert!(AesBackend::Scalar.is_available());
        assert!(AesBackend::Sliced.is_available());
    }

    #[test]
    fn detect_returns_an_available_backend() {
        assert!(AesBackend::detect().is_available());
    }

    #[test]
    fn names_roundtrip() {
        for b in AesBackend::ALL {
            assert_eq!(format!("{b}"), b.name());
        }
    }

    #[test]
    fn bogus_override_is_a_loud_error_not_a_fallback() {
        let err = AesBackend::from_override("vector9000").unwrap_err();
        assert_eq!(err, BackendError::Unknown("vector9000".to_string()));
        let msg = err.to_string();
        assert!(
            msg.contains("vector9000"),
            "error must name the value: {msg}"
        );
        assert!(msg.contains("ARM2GC_AES_BACKEND"));
        // Empty and case-mangled values are rejected too — no fuzzy
        // matching that could mask a typo with a silent fallback.
        assert!(AesBackend::from_override("").is_err());
        assert!(AesBackend::from_override("Sliced").is_err());
    }

    #[test]
    fn valid_overrides_resolve_to_the_named_backend() {
        assert_eq!(AesBackend::from_override("scalar"), Ok(AesBackend::Scalar));
        assert_eq!(AesBackend::from_override("sliced"), Ok(AesBackend::Sliced));
        let auto = AesBackend::from_override("auto").unwrap();
        assert!(auto.is_available());
        assert_ne!(auto, AesBackend::Scalar, "auto never picks the reference");
        match AesBackend::from_override("aesni") {
            Ok(b) => {
                assert_eq!(b, AesBackend::AesNi);
                assert!(AesBackend::AesNi.is_available());
            }
            Err(e) => {
                assert_eq!(e, BackendError::Unavailable(AesBackend::AesNi));
                assert!(!AesBackend::AesNi.is_available());
                assert!(e.to_string().contains("aesni"));
            }
        }
    }
}
