//! x86_64-specific acceleration: the AES-NI backend and the SSE2 plane
//! word for the bitsliced engine.
//!
//! The only module in the workspace allowed to use `unsafe`: everything
//! here is a thin wrapper over `std::arch` intrinsics. Safety rests on
//! three invariants:
//!
//! * the AES-NI entry points are called only after [`available`]
//!   returned `true` (runtime `is_x86_feature_detected!` — never
//!   assumed at compile time),
//! * the SSE2 intrinsics backing [`Sse2Word`] require only the `sse2`
//!   feature, which is part of the x86_64 *baseline* target — they are
//!   unconditionally present on every CPU this module compiles for, and
//! * all loads/stores go through `loadu`/`storeu` on in-bounds
//!   16-byte buffers, so no alignment or aliasing requirements exist
//!   beyond what safe Rust already guarantees.
//!
//! Eight blocks are kept in flight per AES-NI pass so the `aesenc`
//! pipeline (latency ≫ throughput on every AES-NI core) stays full.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, __m256i, _mm256_and_si256, _mm256_extracti128_si256, _mm256_or_si256,
    _mm256_set1_epi8, _mm256_set_epi64x, _mm256_shuffle_epi32, _mm256_shufflehi_epi16,
    _mm256_shufflelo_epi16, _mm256_sll_epi64, _mm256_slli_epi64, _mm256_srl_epi64,
    _mm256_srli_epi64, _mm256_xor_si256, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_and_si128,
    _mm_cvtsi128_si64, _mm_loadu_si128, _mm_or_si128, _mm_set1_epi8, _mm_set_epi64x,
    _mm_setzero_si128, _mm_shuffle_epi32, _mm_shufflehi_epi16, _mm_shufflelo_epi16, _mm_sll_epi64,
    _mm_slli_epi64, _mm_srl_epi64, _mm_srli_epi64, _mm_storeu_si128, _mm_unpackhi_epi64,
    _mm_xor_si128,
};
use core::ops::{BitAnd, BitOr, BitXor, Not};

use crate::aes_sliced::{SlicedKeys, Word};

/// Blocks kept in flight per pass (matches the sliced backend's width).
const LANES: usize = 8;

/// Runtime check for hardware AES support.
pub(crate) fn available() -> bool {
    is_x86_feature_detected!("aes") && is_x86_feature_detected!("sse2")
}

/// Entry point of the sliced backend on x86_64: AVX2 words (16 blocks
/// per pass) when the CPU has them, SSE2 words (always present in the
/// x86_64 baseline) otherwise.
pub(crate) fn sliced_encrypt(keys: &SlicedKeys, blocks: &mut [u128]) {
    if is_x86_feature_detected!("avx2") {
        // SAFETY: `avx2` was just runtime-verified.
        unsafe { sliced_encrypt_avx2(keys, blocks) }
    } else {
        crate::aes_sliced::encrypt_wide_with::<Sse2Word>(keys, blocks);
    }
}

/// Monomorphises the whole sliced circuit inside an `avx2` context so
/// every intrinsic wrapper inlines into feature-carrying code.
///
/// # Safety
/// Caller must have runtime-verified the `avx2` feature.
#[target_feature(enable = "avx2")]
unsafe fn sliced_encrypt_avx2(keys: &SlicedKeys, blocks: &mut [u128]) {
    crate::aes_sliced::encrypt_wide_with::<Avx2Word>(keys, blocks);
}

/// Loads the expanded scalar key schedule into vector registers.
#[inline]
fn load_keys(round_keys: &[[u8; 16]; 11]) -> [__m128i; 11] {
    // SAFETY: each round key is a readable 16-byte buffer; `loadu` has
    // no alignment requirement.
    core::array::from_fn(|i| unsafe { _mm_loadu_si128(round_keys[i].as_ptr().cast()) })
}

/// Encrypts up to [`LANES`] blocks through interleaved AES-NI pipelines.
///
/// # Safety
/// The caller must have verified [`available`] (the `aes` target
/// feature) and pass at most [`LANES`] blocks.
#[target_feature(enable = "aes")]
unsafe fn encrypt_wide(rk: &[__m128i; 11], blocks: &mut [[u8; 16]]) {
    let n = blocks.len();
    debug_assert!(n <= LANES);
    let mut s = [_mm_setzero_si128(); LANES];
    for (lane, block) in s.iter_mut().zip(blocks.iter()) {
        *lane = _mm_loadu_si128(block.as_ptr().cast());
    }
    for lane in s.iter_mut().take(n) {
        *lane = _mm_xor_si128(*lane, rk[0]);
    }
    for &key in &rk[1..10] {
        for lane in s.iter_mut().take(n) {
            *lane = _mm_aesenc_si128(*lane, key);
        }
    }
    for lane in s.iter_mut().take(n) {
        *lane = _mm_aesenclast_si128(*lane, rk[10]);
    }
    for (block, lane) in blocks.iter_mut().zip(s.iter()) {
        _mm_storeu_si128(block.as_mut_ptr().cast(), *lane);
    }
}

/// Encrypts `blocks` in place. Caller must have verified [`available`].
pub(crate) fn encrypt_blocks(round_keys: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) {
    debug_assert!(available());
    let rk = load_keys(round_keys);
    for chunk in blocks.chunks_mut(LANES) {
        // SAFETY: the dispatcher only selects this backend when
        // `available()` holds, so the `aes` feature is present.
        unsafe { encrypt_wide(&rk, chunk) }
    }
}

/// Encrypts big-endian `u128` blocks in place (the engine's canonical
/// block representation). Caller must have verified [`available`].
pub(crate) fn encrypt_u128s(round_keys: &[[u8; 16]; 11], blocks: &mut [u128]) {
    debug_assert!(available());
    let rk = load_keys(round_keys);
    for chunk in blocks.chunks_mut(LANES) {
        let mut buf = [[0u8; 16]; LANES];
        for (b, &x) in buf.iter_mut().zip(chunk.iter()) {
            *b = x.to_be_bytes();
        }
        // SAFETY: as in `encrypt_blocks`.
        unsafe { encrypt_wide(&rk, &mut buf[..chunk.len()]) }
        for (x, b) in chunk.iter_mut().zip(buf.iter()) {
            *x = u128::from_be_bytes(*b);
        }
    }
}

/// An SSE2 `__m128i` plane word for the bitsliced engine: one vector
/// instruction per 128-bit plane operation instead of two 64-bit ALU
/// ops, roughly doubling sliced throughput on x86_64.
///
/// SSE2 is part of the x86_64 baseline target, so every intrinsic call
/// below is statically guaranteed to be supported — the `unsafe` blocks
/// discharge only the `#[target_feature]` formality.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Sse2Word(__m128i);

impl BitXor for Sse2Word {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        Self(unsafe { _mm_xor_si128(self.0, rhs.0) })
    }
}

impl BitAnd for Sse2Word {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        Self(unsafe { _mm_and_si128(self.0, rhs.0) })
    }
}

impl BitOr for Sse2Word {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        Self(unsafe { _mm_or_si128(self.0, rhs.0) })
    }
}

impl Not for Sse2Word {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        Self(unsafe { _mm_xor_si128(self.0, _mm_set1_epi8(-1)) })
    }
}

impl Sse2Word {
    #[inline(always)]
    fn from_u128(x: u128) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        Self(unsafe { _mm_set_epi64x((x >> 64) as i64, x as i64) })
    }

    #[inline(always)]
    fn to_u128(self) -> u128 {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        let lo = unsafe { _mm_cvtsi128_si64(self.0) } as u64;
        // SAFETY: as above.
        let hi = unsafe { _mm_cvtsi128_si64(_mm_unpackhi_epi64(self.0, self.0)) } as u64;
        ((hi as u128) << 64) | lo as u128
    }
}

impl Word for Sse2Word {
    const GROUPS: usize = 1;

    #[inline(always)]
    fn splat(x: u128) -> Self {
        Self::from_u128(x)
    }

    #[inline(always)]
    fn gather(blocks: &[u128], k: usize) -> Self {
        Self::from_u128(blocks.get(k).map_or(0, |x| x.swap_bytes()))
    }

    #[inline(always)]
    fn scatter(self, blocks: &mut [u128], k: usize) {
        if let Some(slot) = blocks.get_mut(k) {
            *slot = self.to_u128().swap_bytes();
        }
    }

    /// Lane-local 64-bit shift — exact for every masked use in the
    /// sliced circuit (no masked bit ever crosses a 64-bit lane). The
    /// circuit only shifts by the six literal amounts below, so after
    /// inlining each call folds to one immediate-form `psllq`.
    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        unsafe {
            match n {
                1 => Self(_mm_slli_epi64::<1>(self.0)),
                2 => Self(_mm_slli_epi64::<2>(self.0)),
                4 => Self(_mm_slli_epi64::<4>(self.0)),
                8 => Self(_mm_slli_epi64::<8>(self.0)),
                16 => Self(_mm_slli_epi64::<16>(self.0)),
                24 => Self(_mm_slli_epi64::<24>(self.0)),
                _ => Self(_mm_sll_epi64(self.0, _mm_set_epi64x(0, n as i64))),
            }
        }
    }

    /// Lane-local 64-bit shift — see [`Sse2Word::shl`].
    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        unsafe {
            match n {
                1 => Self(_mm_srli_epi64::<1>(self.0)),
                2 => Self(_mm_srli_epi64::<2>(self.0)),
                4 => Self(_mm_srli_epi64::<4>(self.0)),
                8 => Self(_mm_srli_epi64::<8>(self.0)),
                16 => Self(_mm_srli_epi64::<16>(self.0)),
                24 => Self(_mm_srli_epi64::<24>(self.0)),
                _ => Self(_mm_srl_epi64(self.0, _mm_set_epi64x(0, n as i64))),
            }
        }
    }

    /// Dword rotation via `pshufd`; callers pass literal `k`, so the
    /// match folds away after inlining.
    #[inline(always)]
    fn ror32(self, k: u32) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        unsafe {
            match k & 3 {
                1 => Self(_mm_shuffle_epi32::<0x39>(self.0)),
                2 => Self(_mm_shuffle_epi32::<0x4E>(self.0)),
                3 => Self(_mm_shuffle_epi32::<0x93>(self.0)),
                _ => self,
            }
        }
    }

    /// Halfword swap within each dword: one `pshuflw` + `pshufhw` pair
    /// instead of the mask-and-shift default.
    #[inline(always)]
    fn dword_ror16(self) -> Self {
        // SAFETY: sse2 is in the x86_64 baseline feature set.
        unsafe {
            Self(_mm_shufflehi_epi16::<0xB1>(_mm_shufflelo_epi16::<0xB1>(
                self.0,
            )))
        }
    }
}

/// An AVX2 `__m256i` plane word: two independent 128-bit groups, so
/// one pass pushes 16 blocks through the bitsliced circuit. Every
/// operation used by the circuit is 128-bit-lane-local on AVX2
/// (`vpshufd`/`vpshuflw` permute within each 128-bit lane), which is
/// exactly the per-group semantics [`Word`] requires.
///
/// Unlike SSE2 this is *not* baseline: construction and use happen only
/// inside `sliced_encrypt_avx2`, which is entered after runtime
/// detection.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Avx2Word(__m256i);

impl BitXor for Avx2Word {
    type Output = Self;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        // SAFETY: only reachable after `avx2` runtime detection.
        Self(unsafe { _mm256_xor_si256(self.0, rhs.0) })
    }
}

impl BitAnd for Avx2Word {
    type Output = Self;
    #[inline(always)]
    fn bitand(self, rhs: Self) -> Self {
        // SAFETY: only reachable after `avx2` runtime detection.
        Self(unsafe { _mm256_and_si256(self.0, rhs.0) })
    }
}

impl BitOr for Avx2Word {
    type Output = Self;
    #[inline(always)]
    fn bitor(self, rhs: Self) -> Self {
        // SAFETY: only reachable after `avx2` runtime detection.
        Self(unsafe { _mm256_or_si256(self.0, rhs.0) })
    }
}

impl Not for Avx2Word {
    type Output = Self;
    #[inline(always)]
    fn not(self) -> Self {
        // SAFETY: only reachable after `avx2` runtime detection.
        Self(unsafe { _mm256_xor_si256(self.0, _mm256_set1_epi8(-1)) })
    }
}

impl Word for Avx2Word {
    const GROUPS: usize = 2;

    #[inline(always)]
    fn splat(x: u128) -> Self {
        let hi = (x >> 64) as i64;
        let lo = x as i64;
        // SAFETY: only reachable after `avx2` runtime detection.
        Self(unsafe { _mm256_set_epi64x(hi, lo, hi, lo) })
    }

    #[inline(always)]
    fn gather(blocks: &[u128], k: usize) -> Self {
        let g0 = blocks.get(k).map_or(0, |x| x.swap_bytes());
        let g1 = blocks.get(k + 8).map_or(0, |x| x.swap_bytes());
        // SAFETY: only reachable after `avx2` runtime detection.
        Self(unsafe {
            _mm256_set_epi64x((g1 >> 64) as i64, g1 as i64, (g0 >> 64) as i64, g0 as i64)
        })
    }

    #[inline(always)]
    fn scatter(self, blocks: &mut [u128], k: usize) {
        // SAFETY: only reachable after `avx2` runtime detection.
        let g0 = Sse2Word(unsafe { _mm256_extracti128_si256::<0>(self.0) }).to_u128();
        // SAFETY: as above.
        let g1 = Sse2Word(unsafe { _mm256_extracti128_si256::<1>(self.0) }).to_u128();
        if let Some(slot) = blocks.get_mut(k) {
            *slot = g0.swap_bytes();
        }
        if let Some(slot) = blocks.get_mut(k + 8) {
            *slot = g1.swap_bytes();
        }
    }

    /// Lane-local 64-bit shift — see [`Sse2Word::shl`].
    #[inline(always)]
    fn shl(self, n: u32) -> Self {
        // SAFETY: only reachable after `avx2` runtime detection.
        unsafe {
            match n {
                1 => Self(_mm256_slli_epi64::<1>(self.0)),
                2 => Self(_mm256_slli_epi64::<2>(self.0)),
                4 => Self(_mm256_slli_epi64::<4>(self.0)),
                8 => Self(_mm256_slli_epi64::<8>(self.0)),
                16 => Self(_mm256_slli_epi64::<16>(self.0)),
                24 => Self(_mm256_slli_epi64::<24>(self.0)),
                _ => Self(_mm256_sll_epi64(self.0, _mm_set_epi64x(0, n as i64))),
            }
        }
    }

    /// Lane-local 64-bit shift — see [`Sse2Word::shl`].
    #[inline(always)]
    fn shr(self, n: u32) -> Self {
        // SAFETY: only reachable after `avx2` runtime detection.
        unsafe {
            match n {
                1 => Self(_mm256_srli_epi64::<1>(self.0)),
                2 => Self(_mm256_srli_epi64::<2>(self.0)),
                4 => Self(_mm256_srli_epi64::<4>(self.0)),
                8 => Self(_mm256_srli_epi64::<8>(self.0)),
                16 => Self(_mm256_srli_epi64::<16>(self.0)),
                24 => Self(_mm256_srli_epi64::<24>(self.0)),
                _ => Self(_mm256_srl_epi64(self.0, _mm_set_epi64x(0, n as i64))),
            }
        }
    }

    /// Per-128-lane dword rotation (`vpshufd` is lane-local).
    #[inline(always)]
    fn ror32(self, k: u32) -> Self {
        // SAFETY: only reachable after `avx2` runtime detection.
        unsafe {
            match k & 3 {
                1 => Self(_mm256_shuffle_epi32::<0x39>(self.0)),
                2 => Self(_mm256_shuffle_epi32::<0x4E>(self.0)),
                3 => Self(_mm256_shuffle_epi32::<0x93>(self.0)),
                _ => self,
            }
        }
    }

    /// Halfword swap within each dword (lane-local shuffles).
    #[inline(always)]
    fn dword_ror16(self) -> Self {
        // SAFETY: only reachable after `avx2` runtime detection.
        unsafe {
            Self(_mm256_shufflehi_epi16::<0xB1>(
                _mm256_shufflelo_epi16::<0xB1>(self.0),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both x86 word instantiations of the full circuit are pinned to
    /// the portable `u128` word — directly, so the SSE2 path stays
    /// covered even on AVX2 machines where dispatch never selects it.
    #[test]
    fn x86_words_match_portable_circuit() {
        let keys = SlicedKeys::new(&crate::aes::expand_key(*b"sse2/avx2-words!"));
        for n in [1usize, 7, 8, 9, 16, 23] {
            let blocks: Vec<u128> = (0..n as u128)
                .map(|k| 0x9E37_79B9_7F4A_7C15_F39C_0C2B_85A3_08D3u128.wrapping_mul(k + 7))
                .collect();
            let mut portable = blocks.clone();
            crate::aes_sliced::encrypt_wide_with::<u128>(&keys, &mut portable);

            let mut sse2 = blocks.clone();
            crate::aes_sliced::encrypt_wide_with::<Sse2Word>(&keys, &mut sse2);
            assert_eq!(sse2, portable, "sse2 n={n}");

            if is_x86_feature_detected!("avx2") {
                let mut avx2 = blocks.clone();
                // SAFETY: `avx2` was just runtime-verified.
                unsafe { sliced_encrypt_avx2(&keys, &mut avx2) };
                assert_eq!(avx2, portable, "avx2 n={n}");
            }
        }
    }

    #[test]
    fn sse2_word_roundtrip_and_ops() {
        let a: u128 = 0x0123_4567_89AB_CDEF_FEDC_BA98_7654_3210;
        let b: u128 = 0xDEAD_BEEF_CAFE_F00D_0123_4567_89AB_CDEF;
        let wa = Sse2Word::from_u128(a);
        let wb = Sse2Word::from_u128(b);
        assert_eq!(wa.to_u128(), a);
        assert_eq!((wa ^ wb).to_u128(), a ^ b);
        assert_eq!((wa & wb).to_u128(), a & b);
        assert_eq!((wa | wb).to_u128(), a | b);
        assert_eq!((!wa).to_u128(), !a);
        for k in 1..4 {
            assert_eq!(wa.ror32(k).to_u128(), a.rotate_right(32 * k));
        }
        // Halfword-swap shuffle agrees with the portable default impl.
        assert_eq!(wa.dword_ror16().to_u128(), <u128 as Word>::dword_ror16(a));
        // Lane-local shifts match per-lane u64 shifts.
        for n in [1u32, 2, 4, 8, 16, 24] {
            let full = wa.shl(n).to_u128();
            let lanes = (((((a >> 64) as u64) << n) as u128) << 64) | (((a as u64) << n) as u128);
            assert_eq!(full, lanes, "shl {n}");
        }
    }
}
