//! Criterion benchmarks of execution scheduling: netlist-order
//! wavefront vs precomputed topological layers, for both engines.
//!
//! The two modes produce byte-identical transcripts; what changes is
//! how many independent nonlinear gates reach the batched AES core per
//! hash call. Before timing, each group prints the measured batch
//! occupancy (batches formed, largest batch, mean width) so the
//! schedule's effect is visible even when wall-clock is dominated by
//! transport.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use arm2gc_bench::runner::{run_baseline_outcome, run_skipgate_outcome, table1_circuits};
use arm2gc_circuit::ScheduleMode;
use arm2gc_core::{OtBackend, ShardConfig, StreamConfig, TwoPartyConfig};

const MODES: [ScheduleMode; 2] = [ScheduleMode::Netlist, ScheduleMode::Layered];

fn cfg(mode: ScheduleMode) -> TwoPartyConfig {
    TwoPartyConfig::new().schedule(mode)
}

/// The chain-heavy Table 1 circuits: netlist order interleaves long
/// dependency chains, so the wavefront keeps breaking while the layer
/// schedule regroups whole levels.
const CHAIN_HEAVY: [&str; 3] = ["mult_32", "matmul_3x3_32", "aes_128"];

fn bench_skipgate_scheduling(c: &mut Criterion) {
    let circuits = table1_circuits(true);
    let mut g = c.benchmark_group("skipgate_scheduling");
    g.sample_size(10);
    for bc in circuits
        .iter()
        .filter(|bc| CHAIN_HEAVY.contains(&bc.circuit.name()))
    {
        for mode in MODES {
            let occ = run_skipgate_outcome(bc, cfg(mode)).batching;
            println!(
                "occupancy {}/{:?}: {} batches, largest {}, mean {:.1}, fallback cycles {}",
                bc.circuit.name(),
                mode,
                occ.batches,
                occ.largest_batch,
                occ.mean_batch(),
                occ.fallback_cycles
            );
            g.throughput(Throughput::Elements(occ.batched_gates));
            g.bench_function(format!("{}/{mode:?}", bc.circuit.name()), |b| {
                b.iter(|| run_skipgate_outcome(bc, cfg(mode)))
            });
        }
    }
    g.finish();
}

fn bench_baseline_scheduling(c: &mut Criterion) {
    let circuits = table1_circuits(true);
    let mut g = c.benchmark_group("baseline_scheduling");
    g.sample_size(10);
    for bc in circuits
        .iter()
        .filter(|bc| CHAIN_HEAVY.contains(&bc.circuit.name()))
    {
        for mode in MODES {
            let occ = run_baseline_outcome(
                bc,
                OtBackend::Insecure,
                StreamConfig::default(),
                ShardConfig::single(),
                mode,
            )
            .batching;
            println!(
                "occupancy {}/{:?}: {} batches, largest {}, mean {:.1}",
                bc.circuit.name(),
                mode,
                occ.batches,
                occ.largest_batch,
                occ.mean_batch()
            );
            g.throughput(Throughput::Elements(occ.batched_gates));
            g.bench_function(format!("{}/{mode:?}", bc.circuit.name()), |b| {
                b.iter(|| {
                    run_baseline_outcome(
                        bc,
                        OtBackend::Insecure,
                        StreamConfig::default(),
                        ShardConfig::single(),
                        mode,
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_skipgate_scheduling,
    bench_baseline_scheduling
);
criterion_main!(benches);
