//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! 1. **Garbling scheme** — classic 4-row vs GRR3 vs half-gates
//!    (bytes per AND and garbling time),
//! 2. **Dead-gate filtering** (Alg. 4 line 18) on vs off,
//! 3. **Linear-scan register file** — oblivious access cost vs the
//!    accessed subset size (§4.4's ORAM discussion).

use criterion::{criterion_group, criterion_main, Criterion};

use arm2gc_circuit::sim::PartyData;
use arm2gc_circuit::{CircuitBuilder, DffInit, Op, RamConfig, Role};
use arm2gc_core::{run_two_party_with, SkipGateOptions};
use arm2gc_crypto::{Delta, GarbleHash, Label, Prg};

fn bench_garbling_schemes(c: &mut Criterion) {
    let mut prg = Prg::from_seed([5; 16]);
    let delta = Delta::random(&mut prg);
    let hash = GarbleHash::fixed();
    let a0 = Label::random(&mut prg);
    let b0 = Label::random(&mut prg);
    let c0 = Label::random(&mut prg);

    let mut g = c.benchmark_group("ablation_garbling_scheme");
    g.bench_function("rows4_64B", |b| {
        b.iter(|| arm2gc_garble::rows4::garble4(&hash, delta, Op::AND, a0, b0, c0, 3))
    });
    g.bench_function("grr3_48B", |b| {
        b.iter(|| arm2gc_garble::rows4::garble3(&hash, delta, Op::AND, a0, b0, 3))
    });
    let hg = arm2gc_garble::HalfGateGarbler::new(delta);
    g.bench_function("halfgate_32B", |b| b.iter(|| hg.garble(Op::AND, a0, b0, 3)));
    g.finish();

    // Communication comparison is deterministic; print once.
    println!("bytes per AND gate: 4-row = 64, GRR3 = 48, half-gates = 32");
}

fn bench_dead_gate_filter(c: &mut Criterion) {
    // A circuit with a large dead cone: only 1 of 64 AND outputs is used.
    let build = || {
        let mut b = CircuitBuilder::new("dead_cone");
        let xs = b.inputs(Role::Alice, 64);
        let ys = b.inputs(Role::Bob, 64);
        let ands = b.and_bus(&xs, &ys);
        let zero = b.constant(false);
        // Kill all but one AND with a public-0 mux chain.
        let mut acc = ands[0];
        for &w in &ands[1..] {
            let dead = b.and(w, zero);
            acc = b.xor(acc, dead);
        }
        b.output(acc);
        b.build()
    };
    let circuit = build();
    let alice = PartyData::from_stream(vec![vec![true; 64]]);
    let bob = PartyData::from_stream(vec![vec![false; 64]]);
    let none = PartyData::default();

    let mut g = c.benchmark_group("ablation_dead_gate_filter");
    g.sample_size(20);
    for (name, filter) in [("filter_on", true), ("filter_off", false)] {
        let opts = SkipGateOptions {
            filter_dead_gates: filter,
        };
        g.bench_function(name, |b| {
            b.iter(|| run_two_party_with(&circuit, &alice, &bob, &none, 1, opts))
        });
    }
    g.finish();

    let on = run_two_party_with(
        &circuit,
        &alice,
        &bob,
        &none,
        1,
        SkipGateOptions {
            filter_dead_gates: true,
        },
    )
    .0
    .stats
    .garbled_tables;
    let off = run_two_party_with(
        &circuit,
        &alice,
        &bob,
        &none,
        1,
        SkipGateOptions {
            filter_dead_gates: false,
        },
    )
    .0
    .stats
    .garbled_tables;
    println!("dead-gate filter: {on} tables with Alg.4-l18 filtering, {off} without");
}

fn bench_regfile_subset(c: &mut Criterion) {
    // §4.4: oblivious read cost scales with the accessed subset, not the
    // memory size, once SkipGate collapses the public part of the index.
    let mut g = c.benchmark_group("ablation_regfile_subset");
    g.sample_size(20);
    for secret_bits in [0usize, 1, 2, 3, 4] {
        // 16-register file; the low `secret_bits` of the index are
        // secret, the rest public — an oblivious access to a subset of
        // size 2^secret_bits.
        let mut b = CircuitBuilder::new(format!("regfile_{secret_bits}"));
        let ram = b.ram(
            RamConfig {
                words: 16,
                width: 32,
            },
            |w, i| DffInit::Alice((w * 32 + i) as u32),
        );
        let secret_idx = b.inputs(Role::Bob, secret_bits);
        let mut idx = secret_idx.clone();
        while idx.len() < 4 {
            let bit = b.constant(false);
            idx.push(bit);
        }
        let val = ram.read(&mut b, &idx);
        ram.connect_rom(&mut b);
        b.outputs(&val);
        let circuit = b.build();

        let alice = PartyData::from_init((0..512).map(|i| i % 3 == 0).collect());
        let bob = PartyData {
            init: vec![],
            stream: vec![vec![true; secret_bits]],
        };
        let none = PartyData::default();
        let (out, _) =
            run_two_party_with(&circuit, &alice, &bob, &none, 1, SkipGateOptions::default());
        println!(
            "oblivious regfile read, subset 2^{secret_bits}: {} tables",
            out.stats.garbled_tables
        );
        g.bench_function(format!("subset_2pow{secret_bits}"), |bch| {
            bch.iter(|| {
                run_two_party_with(&circuit, &alice, &bob, &none, 1, SkipGateOptions::default())
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_garbling_schemes,
    bench_dead_gate_filter,
    bench_regfile_subset
);
criterion_main!(benches);
