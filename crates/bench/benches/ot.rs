//! Criterion benchmarks of the real OT stack: Naor–Pinkas base OTs,
//! IKNP extension throughput, and the price of a fresh vs resumed
//! session endpoint.
//!
//! Three questions, one group each:
//!
//! * `np_base` — what does one batch of 128 Naor–Pinkas base OTs cost
//!   over the fast test group vs the standard 1279-bit group? This is
//!   the price a session pays exactly once per *fresh* setup.
//! * `iknp_extend` — steady-state extension throughput (OTs/sec) at
//!   garbled-circuit batch sizes, after setup has been paid.
//! * `session` — a full m-OT endpoint lifecycle, fresh (base setup +
//!   extension) vs resumed (cached columns, extension only). The gap
//!   between the two is exactly what the service's base-OT reuse cache
//!   saves every session after a client's first.
//!
//! Both ends run in-process over a memory duplex, so the numbers are
//! compute-only — no network time, same as production loopback tests.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use arm2gc_comm::duplex;
use arm2gc_crypto::{Label, Prg};
use arm2gc_ot::{NaorPinkasReceiver, NaorPinkasSender, OtReceiver, OtSender};
use arm2gc_proto::{OtConfig, ResumableOtReceiver, ResumableOtSender};

/// Deterministic OT inputs: `m` label pairs and a choice vector.
fn inputs(m: usize) -> (Vec<(Label, Label)>, Vec<bool>) {
    let mut gen = Prg::from_seed([41; 16]);
    let pairs = (0..m)
        .map(|_| (Label::random(&mut gen), Label::random(&mut gen)))
        .collect();
    let choices = (0..m).map(|i| (i * 7) % 3 == 1).collect();
    (pairs, choices)
}

/// One batch of 128 Naor–Pinkas base OTs — the per-setup cost the
/// reuse cache amortizes away.
fn bench_np_base(c: &mut Criterion) {
    let mut g = c.benchmark_group("np_base");
    g.sample_size(10);
    let (pairs, choices) = inputs(128);
    for (name, config) in [("test", OtConfig::TEST), ("standard", OtConfig::STANDARD)] {
        g.throughput(Throughput::Elements(128));
        g.bench_function(format!("group={name}/m=128"), |b| {
            b.iter(|| {
                let (mut ca, mut cb) = duplex();
                let pairs = pairs.clone();
                let sender = std::thread::spawn(move || {
                    let mut snd = NaorPinkasSender::new(config.group(), Prg::from_seed([1; 16]));
                    snd.send(&mut ca, &pairs).expect("np send");
                });
                let mut rcv = NaorPinkasReceiver::new(config.group(), Prg::from_seed([2; 16]));
                let got = rcv.receive(&mut cb, &choices).expect("np receive");
                sender.join().expect("sender thread");
                got
            })
        });
    }
    g.finish();
}

/// Steady-state IKNP extension throughput: setup is paid once before
/// the timing loop; every iteration extends the live columns.
fn bench_iknp_extend(c: &mut Criterion) {
    let mut g = c.benchmark_group("iknp_extend");
    g.sample_size(10);
    for m in [256usize, 4096] {
        let (pairs, choices) = inputs(m);
        g.throughput(Throughput::Elements(m as u64));
        g.bench_function(format!("m={m}"), |b| {
            b.iter(|| {
                let (mut ca, mut cb) = duplex();
                let pairs = pairs.clone();
                let sender = std::thread::spawn(move || {
                    let mut prg = Prg::from_seed([3; 16]);
                    let mut snd = ResumableOtSender::fresh(OtConfig::TEST, &mut prg);
                    // Setup batch, then the measured steady-state batch
                    // rides the same columns.
                    snd.send(&mut ca, &pairs[..1]).expect("setup batch");
                    snd.send(&mut ca, &pairs).expect("extend");
                });
                let mut prg = Prg::from_seed([4; 16]);
                let mut rcv = ResumableOtReceiver::fresh(OtConfig::TEST, &mut prg);
                rcv.receive(&mut cb, &choices[..1]).expect("setup batch");
                let got = rcv.receive(&mut cb, &choices).expect("extend");
                sender.join().expect("sender thread");
                got
            })
        });
    }
    g.finish();
}

/// A full m-OT endpoint lifecycle, fresh vs resumed. `resumed` threads
/// the extracted extension state through iterations exactly the way
/// the garbler service's cache does between a client's sessions.
fn bench_session(c: &mut Criterion) {
    let mut g = c.benchmark_group("session");
    g.sample_size(10);
    let m = 1024usize;
    let (pairs, choices) = inputs(m);
    g.throughput(Throughput::Elements(m as u64));

    let fresh_pairs = pairs.clone();
    let fresh_choices = choices.clone();
    g.bench_function(format!("fresh/m={m}"), move |b| {
        b.iter(|| {
            let (mut ca, mut cb) = duplex();
            let pairs = fresh_pairs.clone();
            let sender = std::thread::spawn(move || {
                let mut prg = Prg::from_seed([5; 16]);
                let mut snd = ResumableOtSender::fresh(OtConfig::TEST, &mut prg);
                snd.send(&mut ca, &pairs).expect("fresh send");
            });
            let mut prg = Prg::from_seed([6; 16]);
            let mut rcv = ResumableOtReceiver::fresh(OtConfig::TEST, &mut prg);
            let got = rcv.receive(&mut cb, &fresh_choices).expect("fresh receive");
            sender.join().expect("sender thread");
            got
        })
    });

    // Seed one fresh session to mint the cached state, then measure
    // resumed sessions only.
    let (mut ca, mut cb) = duplex();
    let seed_pairs = pairs.clone();
    let seeder = std::thread::spawn(move || {
        let mut prg = Prg::from_seed([7; 16]);
        let mut snd = ResumableOtSender::fresh(OtConfig::TEST, &mut prg);
        snd.send(&mut ca, &seed_pairs).expect("seed send");
        snd.into_state().expect("sender state")
    });
    let mut prg = Prg::from_seed([8; 16]);
    let mut rcv = ResumableOtReceiver::fresh(OtConfig::TEST, &mut prg);
    rcv.receive(&mut cb, &inputs(m).1).expect("seed receive");
    let mut snd_state = Some(seeder.join().expect("seeder thread"));
    let mut rcv_state = Some(rcv.into_state().expect("receiver state"));

    g.bench_function(format!("resumed/m={m}"), move |b| {
        b.iter(|| {
            let (mut ca, mut cb) = duplex();
            let pairs = pairs.clone();
            let state = snd_state.take().expect("sender state banked");
            let sender = std::thread::spawn(move || {
                let mut prg = Prg::from_seed([9; 16]);
                let mut snd = ResumableOtSender::resume(state, &mut prg);
                snd.send(&mut ca, &pairs).expect("resumed send");
                snd.into_state().expect("sender state")
            });
            let mut prg = Prg::from_seed([10; 16]);
            let mut rcv =
                ResumableOtReceiver::resume(rcv_state.take().expect("receiver state"), &mut prg);
            let got = rcv.receive(&mut cb, &choices).expect("resumed receive");
            snd_state = Some(sender.join().expect("sender thread"));
            rcv_state = Some(rcv.into_state().expect("receiver state"));
            got
        })
    });
    g.finish();
}

criterion_group!(benches, bench_np_base, bench_iknp_extend, bench_session);
criterion_main!(benches);
