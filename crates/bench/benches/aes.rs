//! Criterion micro-benchmarks of the crypto core: raw block encryption
//! per backend (scalar reference vs portable bitsliced vs AES-NI when
//! detected), the batched garbling hash, and per-gate vs batched
//! half-gate garbling sized to a Table 1 circuit's per-cycle wavefront.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use arm2gc_bench::runner::{run_baseline, run_skipgate};
use arm2gc_circuit::bench_circuits;
use arm2gc_circuit::Op;
use arm2gc_crypto::{Aes128, AesBackend, Delta, GarbleHash, Label, Prg};
use arm2gc_garble::halfgate::GarbleJob;
use arm2gc_garble::{rows4, HalfGateEvaluator, HalfGateGarbler};

const BLOCKS: usize = 4096;

fn available_backends() -> Vec<AesBackend> {
    AesBackend::ALL
        .into_iter()
        .filter(|b| b.is_available())
        .collect()
}

/// Raw AES-128 throughput per backend: the ≥4× sliced-vs-scalar win the
/// crypto-core refactor is gated on shows up here.
fn bench_aes_backends(c: &mut Criterion) {
    let key = *b"ARM2GC-fixed-key";
    let mut g = c.benchmark_group("aes_blocks");
    g.throughput(Throughput::Bytes(16 * BLOCKS as u64));
    for backend in available_backends() {
        let aes = Aes128::with_backend(key, backend);
        let blocks: Vec<u128> = (0..BLOCKS as u128).collect();
        g.bench_function(backend.name(), |b| {
            b.iter(|| {
                let mut buf = blocks.clone();
                aes.encrypt_u128s(&mut buf);
                black_box(buf)
            })
        });
        // Single-block dispatch, for the per-call overhead comparison.
        g.bench_function(format!("{}_single", backend.name()), |b| {
            b.iter(|| black_box(aes.encrypt_u128(black_box(42))))
        });
    }
    g.finish();
}

/// The garbling hash: one call per input vs one wide batch.
fn bench_hash_batch(c: &mut Criterion) {
    let h = GarbleHash::fixed();
    let mut prg = Prg::from_seed([3; 16]);
    let inputs: Vec<(Label, u64)> = (0..1024u64).map(|i| (Label::random(&mut prg), i)).collect();

    let mut g = c.benchmark_group("garble_hash");
    g.throughput(Throughput::Elements(inputs.len() as u64));
    g.bench_function("sequential", |b| {
        b.iter(|| {
            inputs
                .iter()
                .map(|&(l, t)| h.hash(l, t))
                .fold(Label::ZERO, |acc, x| acc ^ x)
        })
    });
    g.bench_function("batched", |b| {
        b.iter(|| {
            h.hash_batch(&inputs)
                .into_iter()
                .fold(Label::ZERO, |acc, x| acc ^ x)
        })
    });
    g.finish();
}

/// Per-gate vs batched half-gate garbling/evaluation, with the batch
/// sized to one cycle's non-XOR wavefront of a Table 1 circuit (the
/// AES-128 benchmark circuit: ~1100 garbled gates per cycle).
fn bench_garbling_batched(c: &mut Criterion) {
    let key: Vec<u8> = (0..16).collect();
    let pt: Vec<u8> = (16..32).collect();
    let circuit = bench_circuits::aes128(key.try_into().expect("16"), pt.try_into().expect("16"));
    let gates = circuit.circuit.non_xor_count() as usize;
    let mut prg = Prg::from_seed([9; 16]);
    let delta = Delta::random(&mut prg);
    let garbler = HalfGateGarbler::new(delta);
    let evaluator = HalfGateEvaluator::new();
    let jobs: Vec<GarbleJob> = (0..gates)
        .map(|i| GarbleJob {
            op: Op::AND,
            a0: Label::random(&mut prg),
            b0: Label::random(&mut prg),
            tweak: i as u64,
        })
        .collect();

    let mut g = c.benchmark_group("halfgate_wavefront");
    g.throughput(Throughput::Elements(gates as u64));
    g.bench_function("garble_per_gate", |b| {
        b.iter(|| {
            jobs.iter()
                .map(|j| garbler.garble(j.op, j.a0, j.b0, j.tweak).0)
                .fold(Label::ZERO, |acc, x| acc ^ x)
        })
    });
    g.bench_function("garble_batched", |b| {
        b.iter(|| {
            garbler
                .garble_batch(&jobs)
                .into_iter()
                .fold(Label::ZERO, |acc, (c0, _)| acc ^ c0)
        })
    });

    let tables = garbler.garble_batch(&jobs);
    let eval_jobs: Vec<arm2gc_garble::EvalJob> = jobs
        .iter()
        .zip(&tables)
        .map(|(j, (_, t))| arm2gc_garble::EvalJob {
            a: j.a0,
            b: j.b0,
            table: *t,
            tweak: j.tweak,
        })
        .collect();
    g.bench_function("eval_per_gate", |b| {
        b.iter(|| {
            eval_jobs
                .iter()
                .map(|j| evaluator.eval(j.a, j.b, &j.table, j.tweak))
                .fold(Label::ZERO, |acc, x| acc ^ x)
        })
    });
    g.bench_function("eval_batched", |b| {
        b.iter(|| {
            evaluator
                .eval_batch(&eval_jobs)
                .into_iter()
                .fold(Label::ZERO, |acc, x| acc ^ x)
        })
    });

    // The 4-row ablation baseline batches too (4 hashes per gate).
    let rows4_gates: Vec<(Op, Label, Label, Label, u64)> = (0..gates)
        .map(|i| {
            (
                Op::AND,
                Label::random(&mut prg),
                Label::random(&mut prg),
                Label::random(&mut prg),
                i as u64,
            )
        })
        .collect();
    let h = GarbleHash::fixed();
    g.bench_function("rows4_per_gate", |b| {
        b.iter(|| {
            for &(op, a0, b0, c0, t) in &rows4_gates {
                black_box(rows4::garble4(&h, delta, op, a0, b0, c0, t));
            }
        })
    });
    g.bench_function("rows4_batched", |b| {
        b.iter(|| black_box(rows4::garble4_batch(&h, delta, &rows4_gates)).len())
    });
    g.finish();
}

/// End-to-end protocol runs on a Table 1 circuit — the wavefront
/// batching inside both engines is exercised implicitly.
fn bench_protocol_end_to_end(c: &mut Criterion) {
    let circuit = bench_circuits::hamming(160, &[1, 2, 3, 4, 5], &[6, 7, 8, 9, 10]);
    let mut g = c.benchmark_group("aes_core_protocol");
    g.sample_size(10);
    g.bench_function("hamming160_baseline", |b| b.iter(|| run_baseline(&circuit)));
    g.bench_function("hamming160_skipgate", |b| b.iter(|| run_skipgate(&circuit)));
    g.finish();
}

criterion_group!(
    benches,
    bench_aes_backends,
    bench_hash_batch,
    bench_garbling_batched,
    bench_protocol_end_to_end
);
criterion_main!(benches);
