//! Criterion benchmarks of the garbled processor: end-to-end SkipGate
//! runs of the paper's CPU workloads (small sizes to keep `cargo bench`
//! interactive; the table binaries run the full sizes).

use criterion::{criterion_group, criterion_main, Criterion};

use arm2gc_cpu::asm::assemble;
use arm2gc_cpu::machine::{CpuConfig, GcMachine};
use arm2gc_cpu::programs;

fn bench_cpu(c: &mut Criterion) {
    let machine = GcMachine::new(CpuConfig::small());
    let mut g = c.benchmark_group("garbled_cpu");
    g.sample_size(10);

    let sum = assemble(&programs::sum32()).expect("sum32");
    g.bench_function("sum32", |b| {
        b.iter(|| machine.run_skipgate(&sum, &[1234], &[5678], 64))
    });

    let mult = assemble(&programs::mult32()).expect("mult32");
    g.bench_function("mult32", |b| {
        b.iter(|| machine.run_skipgate(&mult, &[1234], &[5678], 64))
    });

    let ham = assemble(&programs::hamming(1)).expect("hamming");
    g.bench_function("hamming32", |b| {
        b.iter(|| machine.run_skipgate(&ham, &[0xdeadbeef], &[0x600df00d], 256))
    });

    let sort = assemble(&programs::bubble_sort(8)).expect("bubble");
    g.bench_function("bubble_sort8", |b| {
        b.iter(|| {
            machine.run_skipgate(
                &sort,
                &[8, 7, 6, 5, 4, 3, 2, 1],
                &[0, 0, 0, 0, 0, 0, 0, 0],
                20_000,
            )
        })
    });
    g.finish();
}

fn bench_decide_pass(c: &mut Criterion) {
    // Isolates the SkipGate decision engine's per-cycle cost on the CPU
    // netlist (§3.4's "linear computational complexity" claim).
    use arm2gc_core::{DecideContext, TagAllocator, WireVal};
    let machine = GcMachine::new(CpuConfig::small());
    let circuit = machine.circuit();
    let ctx = DecideContext::new(circuit);
    let mut alloc = TagAllocator::new();
    let mut states = vec![WireVal::Public(false); circuit.wire_count()];
    // Mark party memories secret, as at protocol start.
    for dff in circuit.dffs() {
        use arm2gc_circuit::DffInit;
        if matches!(dff.init, DffInit::Alice(_) | DffInit::Bob(_)) {
            states[dff.q.index()] = WireVal::Secret(alloc.fresh());
        }
    }
    c.bench_function("decide_pass_per_cycle", |b| {
        b.iter(|| {
            let mut s = states.clone();
            let mut a = alloc.clone();
            ctx.decide_cycle(&mut s, &mut a, false)
        })
    });
}

criterion_group!(benches, bench_cpu, bench_decide_pass);
criterion_main!(benches);
