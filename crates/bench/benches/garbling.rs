//! Criterion micro-benchmarks of the garbling substrate: half-gate
//! throughput, end-to-end protocol runs on the Table 1 circuits, and
//! the session layer's table streaming (lockstep vs. chunked flush).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use arm2gc_bench::runner::{run_baseline, run_baseline_with, run_skipgate, run_skipgate_with};
use arm2gc_circuit::bench_circuits;
use arm2gc_circuit::Op;
use arm2gc_core::{OtBackend, StreamConfig, TwoPartyConfig};
use arm2gc_crypto::{Delta, Label, Prg};
use arm2gc_garble::{HalfGateEvaluator, HalfGateGarbler};

fn bench_halfgate(c: &mut Criterion) {
    let mut prg = Prg::from_seed([1; 16]);
    let delta = Delta::random(&mut prg);
    let garbler = HalfGateGarbler::new(delta);
    let evaluator = HalfGateEvaluator::new();
    let a0 = Label::random(&mut prg);
    let b0 = Label::random(&mut prg);
    let (_, table) = garbler.garble(Op::AND, a0, b0, 7);

    let mut g = c.benchmark_group("halfgate");
    g.throughput(Throughput::Elements(1));
    g.bench_function("garble_and", |b| {
        b.iter(|| garbler.garble(Op::AND, a0, b0, 7))
    });
    g.bench_function("eval_and", |b| b.iter(|| evaluator.eval(a0, b0, &table, 7)));
    g.finish();
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol");
    g.sample_size(10);
    g.bench_function("sum32_baseline", |b| {
        b.iter(|| run_baseline(&bench_circuits::sum(32, 111, 222)))
    });
    g.bench_function("sum32_skipgate", |b| {
        b.iter(|| run_skipgate(&bench_circuits::sum(32, 111, 222)))
    });
    g.bench_function("hamming160_skipgate", |b| {
        b.iter(|| {
            run_skipgate(&bench_circuits::hamming(
                160,
                &[1, 2, 3, 4, 5],
                &[6, 7, 8, 9, 10],
            ))
        })
    });
    g.bench_function("aes128_skipgate", |b| {
        b.iter(|| {
            let key: Vec<u8> = (0..16).collect();
            let pt: Vec<u8> = (16..32).collect();
            run_skipgate(&bench_circuits::aes128(
                key.try_into().expect("16"),
                pt.try_into().expect("16"),
            ))
        })
    });
    g.finish();
}

/// Table streaming: the legacy per-cycle lockstep flush vs. the
/// session layer's chunked, pipelined flush. `sum_1024` is the
/// many-cycles/few-tables extreme (per-message overhead dominates);
/// `aes_128` is the table-heavy extreme (pipelining garbling against
/// evaluation dominates).
fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("streaming");
    g.sample_size(10);
    let sum = bench_circuits::sum(1024, u64::MAX, 0x1234_5678);
    let key: Vec<u8> = (0..16).collect();
    let pt: Vec<u8> = (16..32).collect();
    let aes = bench_circuits::aes128(key.try_into().expect("16"), pt.try_into().expect("16"));

    g.bench_function("sum1024_baseline_lockstep", |b| {
        b.iter(|| run_baseline_with(&sum, OtBackend::Insecure, StreamConfig::lockstep()))
    });
    g.bench_function("sum1024_baseline_chunked", |b| {
        b.iter(|| run_baseline_with(&sum, OtBackend::Insecure, StreamConfig::default()))
    });
    g.bench_function("aes128_baseline_lockstep", |b| {
        b.iter(|| run_baseline_with(&aes, OtBackend::Insecure, StreamConfig::lockstep()))
    });
    g.bench_function("aes128_baseline_chunked", |b| {
        b.iter(|| run_baseline_with(&aes, OtBackend::Insecure, StreamConfig::default()))
    });
    g.bench_function("sum1024_skipgate_lockstep", |b| {
        b.iter(|| run_skipgate_with(&sum, TwoPartyConfig::new().stream(StreamConfig::lockstep())))
    });
    g.bench_function("sum1024_skipgate_chunked", |b| {
        b.iter(|| run_skipgate_with(&sum, TwoPartyConfig::default()))
    });
    g.finish();
}

criterion_group!(benches, bench_halfgate, bench_protocols, bench_streaming);
criterion_main!(benches);
