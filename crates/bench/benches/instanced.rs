//! Criterion benchmarks of cross-instance batched execution: N lanes
//! of the same circuit through one SoA wavefront vs N sequential runs.
//!
//! Sweeps N ∈ {1, 4, 16} on the chain-heavy Table 1 circuits, printing
//! the session-wide and per-instance amortized batch widths before
//! timing. Throughput is reported per *instance-table*, so the
//! elements/sec figure is directly comparable across lane counts: any
//! amortization win shows up as higher throughput at larger N.
//!
//! The N=1 run is also asserted against the non-instanced layered
//! baseline — same outputs, same cost counters, same occupancy — so
//! the bench doubles as a cheap equivalence check.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use arm2gc_bench::runner::{run_skipgate_instanced_outcome, run_skipgate_outcome, table1_circuits};
use arm2gc_circuit::ScheduleMode;
use arm2gc_core::TwoPartyConfig;

const LANES: [usize; 3] = [1, 4, 16];

/// Chain-heavy circuits where single-instance layered batches stay far
/// below the AES core's appetite — the instanced mode's best case.
const CHAIN_HEAVY: [&str; 2] = ["mult_32", "matmul_3x3_32"];

fn layered_cfg() -> TwoPartyConfig {
    TwoPartyConfig::new().schedule(ScheduleMode::Layered)
}

fn bench_instanced(c: &mut Criterion) {
    let circuits = table1_circuits(true);
    let mut g = c.benchmark_group("instanced");
    g.sample_size(10);
    for bc in circuits
        .iter()
        .filter(|bc| CHAIN_HEAVY.contains(&bc.circuit.name()))
    {
        let seq = run_skipgate_outcome(bc, layered_cfg());
        for n in LANES {
            let inst = run_skipgate_instanced_outcome(bc, TwoPartyConfig::default(), n);
            if n == 1 {
                // One lane must be indistinguishable from the plain
                // layered run, occupancy included.
                let lane = &inst.lanes[0];
                assert_eq!(lane.outputs, seq.outputs, "N=1 outputs");
                assert_eq!(lane.stats, seq.stats, "N=1 cost counters");
                assert_eq!(
                    inst.batching.batches, seq.batching.batches,
                    "N=1 batch count"
                );
                assert_eq!(
                    inst.batching.batched_gates, seq.batching.batched_gates,
                    "N=1 batched gates"
                );
                assert_eq!(
                    inst.batching.largest_batch, seq.batching.largest_batch,
                    "N=1 largest batch"
                );
            }
            println!(
                "occupancy {}/N={n}: {} batches, largest {}, mean {:.1}, per-instance mean {:.1}",
                bc.circuit.name(),
                inst.batching.batches,
                inst.batching.largest_batch,
                inst.batching.mean_batch(),
                inst.batching.mean_batch_per_instance()
            );
            // Tables transferred across all lanes: per-instance cost
            // amortization appears as throughput growth with N.
            g.throughput(Throughput::Elements(
                inst.lanes.iter().map(|l| l.stats.garbled_tables).sum(),
            ));
            g.bench_function(format!("{}/N={n}", bc.circuit.name()), |b| {
                b.iter(|| run_skipgate_instanced_outcome(bc, TwoPartyConfig::default(), n))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_instanced);
criterion_main!(benches);
