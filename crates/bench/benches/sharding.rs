//! Criterion benchmarks of sharded table streaming: the same
//! many-cycle circuits at 1, 2 and 4 shards, for both engines.
//!
//! Sharding moves frame assembly and channel sends onto per-shard
//! worker threads; the cryptographic garbling core stays on the main
//! thread (half-gate output labels feed downstream gates), so the win
//! is transport overlap, not fewer AES calls. These benches track that
//! overlap — and above all that sharding never regresses the
//! single-shard path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use arm2gc_bench::runner::{run_baseline_sharded, run_skipgate_with, table1_circuits};
use arm2gc_circuit::bench_circuits;
use arm2gc_core::{OtBackend, ShardConfig, StreamConfig, TwoPartyConfig};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn bench_skipgate_sharded(c: &mut Criterion) {
    // Many-cycle circuits: the per-cycle partition is recomputed every
    // cycle, so these exercise the steady-state streaming path.
    let circuits = [
        bench_circuits::sum(1024, u64::MAX, 0x1234_5678),
        bench_circuits::hamming(512, &[7u32; 16], &[9u32; 16]),
    ];
    let mut g = c.benchmark_group("skipgate_sharded");
    g.sample_size(10);
    for bc in &circuits {
        for shards in SHARD_COUNTS {
            g.throughput(Throughput::Elements(bc.cycles as u64));
            g.bench_function(format!("{}/shards{shards}", bc.circuit.name()), |b| {
                b.iter(|| {
                    run_skipgate_with(bc, TwoPartyConfig::new().shards(ShardConfig::new(shards)))
                })
            });
        }
    }
    g.finish();
}

fn bench_baseline_sharded(c: &mut Criterion) {
    // The baseline garbles every nonlinear gate every cycle — the
    // densest table stream the workspace produces, i.e. the best case
    // for parallel transport.
    let bc = &table1_circuits(true)[6]; // hamming_512: 4608 tables
    let mut g = c.benchmark_group("baseline_sharded");
    g.sample_size(10);
    for shards in SHARD_COUNTS {
        g.throughput(Throughput::Bytes(32 * 9 * bc.cycles as u64));
        g.bench_function(format!("{}/shards{shards}", bc.circuit.name()), |b| {
            b.iter(|| {
                run_baseline_sharded(
                    bc,
                    OtBackend::Insecure,
                    StreamConfig::default(),
                    ShardConfig::new(shards),
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_skipgate_sharded, bench_baseline_sharded);
criterion_main!(benches);
