//! Evaluation harness: shared runners, the paper's published numbers,
//! and table formatting for the `table1`–`table6` and `figures`
//! binaries (one per table/figure of the paper's §5).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ci;
pub mod paper;
pub mod runner;

use std::fmt::Write as _;

/// Formats an integer with thousands separators (paper-style tables).
pub fn fmt_count(v: u128) -> String {
    let digits = v.to_string();
    let mut out = String::new();
    for (i, ch) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(ch);
    }
    out
}

/// A printable table with a title and aligned columns.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with a title and column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String], widths: &[usize]| {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:>w$} |");
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.header, &widths);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(&mut out, &sep, &widths);
        for row in &self.rows {
            line(&mut out, row, &widths);
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_groups_digits() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1000), "1,000");
        assert_eq!(fmt_count(54_621_701_856), "54,621,701,856");
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["name", "count"]);
        t.row(vec!["x".into(), fmt_count(12345)]);
        let s = t.render();
        assert!(s.contains("12,345"));
        assert!(s.contains("## Demo"));
    }
}
