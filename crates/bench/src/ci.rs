//! The CI perf-regression gate: a deterministic cost report in JSON.
//!
//! Wall-clock numbers are useless as a CI gate (shared runners jitter
//! by 2×), but the paper's actual cost model — garbled tables, table
//! bytes, OTs — is exactly reproducible. [`report`] runs both engines
//! on the small Table 1 circuits and serialises every counter; CI diffs
//! the output against the checked-in baseline
//! (`crates/bench/baselines/BENCH_ci.json`) and fails on any drift.
//!
//! The report deliberately omits the shard count it was produced with:
//! sharding is transport-only, so the gate doubles as a CI-enforced
//! proof that counts are shard-invariant (the workflow runs it sharded
//! against the unsharded baseline). Since v2 it also runs every
//! circuit under both execution schedules: the cost counters come from
//! the *layer-scheduled* runs (so any layered/netlist divergence shows
//! up as cost drift against the historic values), and the per-circuit
//! `schedule` object pins batching occupancy — level count, batch
//! counts, widths — for both modes, so scheduling regressions are
//! caught alongside cost regressions. Since v4 every circuit also runs
//! through one *instanced* N=8 session (eight lanes, identical inputs)
//! and the report pins the per-instance amortized counters: per-lane
//! protocol costs must equal the sequential run exactly, while the
//! session-wide batch widths grow with the lane count. Since v5 the
//! report ends with a `service` section: four sequential sessions over
//! a real loopback garbler service (shards ∈ {1,2} × instances ∈
//! {1,8}), each pinned by its per-lane cost counters and a
//! `matches_solo` bit asserting byte-equality — outputs and counters on
//! both sides — against an in-process solo run of the same workload.
//! Since v6 the service section also carries a `failures` object: a
//! deterministic fault scenario (one injected fault per failure class —
//! corrupt frame, peer disconnect, io timeout, attach expiry) run
//! against a dedicated short-deadline loopback service, pinning the
//! per-reason failure counters so the typed teardown taxonomy is
//! CI-enforced alongside the cost model. Since v7 the report ends with
//! an `ot` section: three sequential sessions under one base-OT resume
//! token over a loopback service speaking the real Naor–Pinkas + IKNP
//! stack (fast test group), pinning `ot_base_setups == 1` — every OT
//! after the first session is served by extending the cached columns —
//! plus the deterministic extension count and a `matches_fresh` bit
//! asserting resumed sessions compute byte-identically to fresh ones.

use std::fmt::Write as _;

use arm2gc_circuit::{LayerSchedule, ScheduleMode};
use arm2gc_comm::{Channel, TcpChannel};
use arm2gc_core::{
    run_two_party_opts, OtBackend, OtConfig, SessionOptions, ShardConfig, StreamConfig,
    TwoPartyConfig,
};
use arm2gc_garble::WavefrontStats;
use arm2gc_server::{client, workload, GarblerService, ServiceConfig};

use crate::runner::{
    run_baseline_outcome, run_skipgate_instanced_outcome, run_skipgate_outcome, table1_circuits,
};

/// Identifies the report layout; bump when fields change.
pub const SCHEMA: &str = "arm2gc-bench-ci/v7";

/// Lanes in the report's instanced runs.
pub const INSTANCES: usize = 8;

fn occupancy(w: &WavefrontStats) -> String {
    format!(
        "{{ \"batches\": {}, \"batched_gates\": {}, \"largest_batch\": {}, \
         \"fallback_cycles\": {}, \"releveled_cycles\": {}, \"patched_gates\": {} }}",
        w.batches,
        w.batched_gates,
        w.largest_batch,
        w.fallback_cycles,
        w.releveled_cycles,
        w.patched_gates
    )
}

/// Builds the deterministic cost report for the small (quick) Table 1
/// circuits, running both engines at the given shard count under both
/// execution schedules.
///
/// The returned string is complete JSON, newline-terminated, with a
/// stable field order — suitable for byte-exact diffing.
pub fn report(shards: ShardConfig) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str(
        "  \"note\": \"deterministic gate/table/byte counts; wall-clock excluded by design\",\n",
    );
    out.push_str("  \"circuits\": [\n");
    let circuits = table1_circuits(true);
    for (i, bc) in circuits.iter().enumerate() {
        let skip_netlist = run_skipgate_outcome(
            bc,
            TwoPartyConfig::new()
                .shards(shards)
                .schedule(ScheduleMode::Netlist),
        );
        let skip_layered = run_skipgate_outcome(
            bc,
            TwoPartyConfig::new()
                .shards(shards)
                .schedule(ScheduleMode::Layered),
        );
        let base_netlist = run_baseline_outcome(
            bc,
            OtBackend::Insecure,
            StreamConfig::default(),
            shards,
            ScheduleMode::Netlist,
        );
        let base_layered = run_baseline_outcome(
            bc,
            OtBackend::Insecure,
            StreamConfig::default(),
            shards,
            ScheduleMode::Layered,
        );
        // The cost counters are reported from the layer-scheduled runs:
        // they carry the same historic values as the netlist walk, so
        // any divergence between the two modes becomes cost drift.
        let base = base_layered.stats;
        let skip = skip_layered.stats;
        let sched = LayerSchedule::of(&bc.circuit);
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", bc.circuit.name());
        let _ = writeln!(out, "      \"cycles\": {},", bc.cycles);
        let _ = writeln!(
            out,
            "      \"baseline\": {{ \"garbled_tables\": {}, \"table_bytes\": {}, \"ots\": {} }},",
            base.garbled_tables, base.table_bytes, base.ots
        );
        let _ = writeln!(
            out,
            "      \"skipgate\": {{ \"garbled_tables\": {}, \"table_bytes\": {}, \"ots\": {}, \
             \"skipped_nonlinear\": {}, \"public_gates\": {}, \"pass_gates\": {}, \
             \"free_xor\": {} }},",
            skip.garbled_tables,
            skip.table_bytes,
            skip.ots,
            skip.skipped_nonlinear,
            skip.public_gates,
            skip.pass_gates,
            skip.free_xor
        );
        let _ = writeln!(
            out,
            "      \"schedule\": {{ \"levels\": {}, \"widest_nonlinear_level\": {},",
            sched.levels(),
            sched.max_nonlinear_width()
        );
        let _ = writeln!(
            out,
            "        \"baseline_netlist\": {},",
            occupancy(&base_netlist.batching)
        );
        let _ = writeln!(
            out,
            "        \"baseline_layered\": {},",
            occupancy(&base_layered.batching)
        );
        let _ = writeln!(
            out,
            "        \"skipgate_netlist\": {},",
            occupancy(&skip_netlist.batching)
        );
        let _ = writeln!(
            out,
            "        \"skipgate_layered\": {} }},",
            occupancy(&skip_layered.batching)
        );
        let inst =
            run_skipgate_instanced_outcome(bc, TwoPartyConfig::new().shards(shards), INSTANCES);
        // Identical inputs in every lane, so lane 0 *is* the
        // per-instance cost (the runner asserts all lanes agree with
        // the sequential expectation).
        let lane = inst.lanes[0].stats;
        let _ = writeln!(
            out,
            "      \"instanced\": {{ \"instances\": {}, \"per_instance\": {{ \
             \"garbled_tables\": {}, \"table_bytes\": {}, \"ots\": {} }},",
            INSTANCES, lane.garbled_tables, lane.table_bytes, lane.ots
        );
        let _ = writeln!(out, "        \"occupancy\": {},", occupancy(&inst.batching));
        let _ = writeln!(
            out,
            "        \"batched_gates_per_instance\": {:.3}, \"mean_batch_per_instance\": {:.3} }}",
            inst.batching.batched_gates_per_instance(),
            inst.batching.mean_batch_per_instance()
        );
        out.push_str(if i + 1 == circuits.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&service_section());
    out.push_str(&ot_section());
    out.push_str("}\n");
    out
}

/// The modes the service section runs, matching the load generator's
/// mix.
const SERVICE_MODES: [(usize, usize); 4] = [(1, 1), (2, 1), (1, 8), (2, 8)];

/// Runs four sequential sessions over a real loopback garbler service
/// and renders the deterministic service-level counters: per-session
/// per-lane costs, a `matches_solo` bit (evaluator outputs/counters
/// *and* the service's garbler-side record both byte-equal to a solo
/// run), and the aggregate completion counters. Queue high-water marks
/// are deliberately absent — they depend on scheduling timing.
fn service_section() -> String {
    let svc = GarblerService::bind("127.0.0.1:0", ServiceConfig::new().workers(1))
        .expect("bind loopback garbler service");
    let addr = svc.local_addr();
    let wait_until = |what: &str, cond: &dyn Fn() -> bool| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out: {what}");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    };
    let mut out = String::new();
    out.push_str("  \"service\": {\n    \"sessions\": [\n");
    for (k, &(session_shards, instances)) in SERVICE_MODES.iter().enumerate() {
        let family = workload::FAMILIES[k % workload::FAMILIES.len()];
        let name = format!("{family}:{k}");
        let opts = SessionOptions::new()
            .shards(session_shards)
            .instances(instances);
        let run = client::run_session(addr, &name, &opts).expect("service session");
        let wl = workload::resolve(&name, instances).expect("known workload");
        let (solo_a, solo_b) = run_two_party_opts(
            &wl.circuit,
            &wl.alices,
            &wl.bobs,
            &wl.publics,
            wl.cycles,
            &opts,
        );
        wait_until("session record", &|| svc.records().len() == k + 1);
        let record = &svc.records()[k];
        let solo_garbler: Vec<_> = solo_a.lanes.iter().map(|l| l.stats).collect();
        let matches_solo = run.outcome.lanes.len() == instances
            && run
                .outcome
                .lanes
                .iter()
                .zip(&solo_b.lanes)
                .all(|(got, want)| got.outputs == want.outputs && got.stats == want.stats)
            && record.result.as_ref() == Ok(&solo_garbler);
        let lane = run.outcome.lanes[0].stats;
        let _ = writeln!(
            out,
            "      {{ \"workload\": \"{name}\", \"shards\": {session_shards}, \
             \"instances\": {instances}, \"per_lane\": {{ \"garbled_tables\": {}, \
             \"table_bytes\": {}, \"ots\": {} }}, \"matches_solo\": {matches_solo} }}{}",
            lane.garbled_tables,
            lane.table_bytes,
            lane.ots,
            if k + 1 == SERVICE_MODES.len() {
                ""
            } else {
                ","
            }
        );
    }
    wait_until("all service sessions complete", &|| {
        svc.metrics().sessions_completed == SERVICE_MODES.len() as u64
    });
    let m = svc.metrics();
    svc.shutdown();
    out.push_str("    ],\n");
    let _ = writeln!(
        out,
        "    \"sessions_completed\": {}, \"sessions_failed\": {}, \
         \"tables_sent\": {}, \"table_bytes_sent\": {},",
        m.sessions_completed, m.sessions_failed, m.tables_sent, m.table_bytes_sent
    );
    out.push_str(&failures_section());
    out.push_str("  },\n");
    out
}

/// Sessions the `ot` section runs under one resume token.
const OT_SESSIONS: usize = 3;

/// Runs [`OT_SESSIONS`] sequential sessions under one base-OT resume
/// token over a loopback service speaking the real Naor–Pinkas + IKNP
/// stack (fast test group) and renders the reuse books: every count is
/// deterministic, and the headline number — `ot_base_setups` — must
/// stay exactly 1, because every session after the first extends the
/// cached IKNP columns instead of paying a fresh setup.
fn ot_section() -> String {
    let svc = GarblerService::bind(
        "127.0.0.1:0",
        ServiceConfig::new()
            .workers(1)
            .ot(OtBackend::NaorPinkasIknp)
            .ot_config(OtConfig::TEST),
    )
    .expect("bind loopback OT service");
    let addr = svc.local_addr();
    let wait_until = |what: &str, cond: &dyn Fn() -> bool| {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !cond() {
            assert!(std::time::Instant::now() < deadline, "timed out: {what}");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    };
    let opts = SessionOptions::new()
        .ot(OtBackend::NaorPinkasIknp)
        .ot_config(OtConfig::TEST);
    let name = "compare32:5";
    let wl = workload::resolve(name, 1).expect("known workload");
    let (_, solo_b) = run_two_party_opts(
        &wl.circuit,
        &wl.alices,
        &wl.bobs,
        &wl.publics,
        wl.cycles,
        &opts,
    );
    let mut resume = client::OtResume::new(0x0ddba11);
    let mut matches_fresh = true;
    for k in 0..OT_SESSIONS {
        let run = client::run_session_resumed(addr, name, &opts, &mut resume).expect("ot session");
        matches_fresh &= run
            .outcome
            .lanes
            .iter()
            .zip(&solo_b.lanes)
            .all(|(got, want)| got.outputs == want.outputs && got.stats == want.stats);
        // Sequential reuse: the garbler banks its state only after the
        // session record lands, so wait before the next preamble
        // checks the cache.
        wait_until("ot session record", &|| svc.records().len() == k + 1);
    }
    let m = svc.metrics();
    svc.shutdown();
    let mut out = String::new();
    out.push_str("  \"ot\": {\n");
    out.push_str(
        "    \"scenario\": \"three sequential sessions under one resume token over the \
         np-iknp stack (test group)\",\n",
    );
    let _ = writeln!(
        out,
        "    \"sessions\": {OT_SESSIONS}, \"ot_base_setups\": {}, \"ot_extended\": {},",
        m.ot_base_setups, m.ot_extended
    );
    let _ = writeln!(
        out,
        "    \"ot_cache_evicted\": {}, \"sessions_completed\": {}, \
         \"matches_fresh\": {matches_fresh}",
        m.ot_cache_evicted, m.sessions_completed
    );
    out.push_str("  }\n");
    out
}

/// Runs one injected fault per failure class against a dedicated
/// short-deadline loopback service and renders the per-reason failure
/// counters. Every count is an exact event count — the scenario is
/// deterministic by construction, so the baseline pins the typed
/// teardown taxonomy end to end.
fn failures_section() -> String {
    use arm2gc_proto::Message;
    use std::net::TcpStream;

    let deadline = std::time::Duration::from_millis(200);
    let svc = GarblerService::bind(
        "127.0.0.1:0",
        ServiceConfig::new()
            .workers(2)
            .io_timeout(Some(deadline))
            .attach_timeout(Some(deadline)),
    )
    .expect("bind fault-scenario service");
    let addr = svc.local_addr();
    let wait_for = |what: &str, cond: &dyn Fn(&arm2gc_server::MetricsSnapshot) -> bool| {
        let stop = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !cond(&svc.metrics()) {
            assert!(std::time::Instant::now() < stop, "timed out: {what}");
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    };
    let opts = SessionOptions::new();

    // Corrupt frame: a valid preamble, then garbage where the protocol
    // handshake belongs.
    let mut poisoned = client::connect(addr, "sum32:0", &opts).expect("poisoned preamble");
    let _ = poisoned.main.recv().expect("garbler hello");
    poisoned
        .main
        .send(b"\xffnot a protocol frame")
        .expect("send garbage");
    wait_for("corrupt-frame teardown", &|m| m.failed_corrupt_frame == 1);

    // Peer disconnect: a valid preamble, then the client vanishes.
    let vanishing = client::connect(addr, "sum32:0", &opts).expect("vanishing preamble");
    drop(vanishing);
    wait_for("disconnect teardown", &|m| m.failed_peer_disconnect == 1);

    // Io timeout: a valid preamble, then silence past the deadline.
    let silent = client::connect(addr, "sum32:0", &opts).expect("silent preamble");
    wait_for("timeout teardown", &|m| m.failed_timeout == 1);
    drop(silent);

    // Attach expiry: a sharded request whose sub-streams never arrive.
    let mut parked = TcpChannel::from_stream(TcpStream::connect(addr).expect("connect"))
        .expect("parked channel");
    parked
        .send(
            &Message::ServiceRequest {
                shards: 2,
                instances: 1,
                ot_token: 0,
                workload: "sum32:0".into(),
            }
            .encode(),
        )
        .expect("parked request");
    let _ = parked.recv().expect("parked accept");
    wait_for("attach expiry", &|m| m.rejected_attach_timeout == 1);

    let m = svc.metrics();
    svc.shutdown();
    let mut out = String::new();
    out.push_str("    \"failures\": {\n");
    out.push_str(
        "      \"scenario\": \"one injected fault per class over a dedicated \
         loopback service\",\n",
    );
    let _ = writeln!(
        out,
        "      \"sessions_failed\": {}, \"failed_timeout\": {}, \
         \"failed_peer_disconnect\": {}, \"failed_corrupt_frame\": {},",
        m.sessions_failed, m.failed_timeout, m.failed_peer_disconnect, m.failed_corrupt_frame
    );
    let _ = writeln!(
        out,
        "      \"failed_shutdown\": {}, \"failed_other\": {}, \
         \"rejected_attach_timeout\": {}",
        m.failed_shutdown, m.failed_other, m.rejected_attach_timeout
    );
    out.push_str("    }\n");
    out
}

/// Scans a report for circuits whose layered runs fell back to the
/// netlist walk; returns one line per violation (empty = gate passes).
///
/// Per-cycle re-leveling made the fallback unreachable, and the bench
/// gate fails on any nonzero `fallback_cycles` — independently of
/// baseline divergence — so the regression can never silently return.
pub fn fallback_violations(report: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut circuit = "<unknown>";
    for line in report.lines() {
        if let Some(rest) = line.trim_start().strip_prefix("\"name\": \"") {
            circuit = rest.trim_end_matches("\",");
        }
        let mut rest = line;
        while let Some(pos) = rest.find("\"fallback_cycles\": ") {
            rest = &rest[pos + "\"fallback_cycles\": ".len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            if digits.parse::<u64>().map(|n| n > 0).unwrap_or(true) {
                out.push(format!(
                    "{circuit}: fallback_cycles {} (layered schedule gave up instead \
                     of re-leveling)",
                    if digits.is_empty() {
                        "<garbled>"
                    } else {
                        &digits
                    }
                ));
            }
        }
    }
    out
}

/// Line-by-line comparison of a fresh report against a baseline;
/// returns the mismatching lines (empty = gate passes).
pub fn diff(baseline: &str, current: &str) -> Vec<String> {
    let mut out = Vec::new();
    let (b_lines, c_lines): (Vec<_>, Vec<_>) =
        (baseline.lines().collect(), current.lines().collect());
    let n = b_lines.len().max(c_lines.len());
    for i in 0..n {
        let b = b_lines.get(i).copied().unwrap_or("<missing>");
        let c = c_lines.get(i).copied().unwrap_or("<missing>");
        if b != c {
            out.push(format!(
                "line {}: baseline `{}` != current `{}`",
                i + 1,
                b,
                c
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_reports_changed_lines_only() {
        assert!(diff("a\nb\n", "a\nb\n").is_empty());
        let d = diff("a\nb\n", "a\nc\nd\n");
        assert_eq!(d.len(), 2);
        assert!(d[0].contains("line 2"));
        assert!(d[1].contains("<missing>"));
    }

    #[test]
    fn fallback_violations_flag_nonzero_counts_with_circuit_names() {
        let clean = concat!(
            "      \"name\": \"aes_128\",\n",
            "        \"skipgate_layered\": { \"batches\": 5, \"fallback_cycles\": 0, ",
            "\"releveled_cycles\": 10 }\n",
        );
        assert!(fallback_violations(clean).is_empty());

        let dirty = concat!(
            "      \"name\": \"sum_32\",\n",
            "        \"skipgate_layered\": { \"fallback_cycles\": 0 }\n",
            "      \"name\": \"aes_128\",\n",
            "        \"baseline_layered\": { \"fallback_cycles\": 0 },\n",
            "        \"skipgate_layered\": { \"fallback_cycles\": 10 }\n",
        );
        let v = fallback_violations(dirty);
        assert_eq!(v.len(), 1);
        assert!(v[0].starts_with("aes_128: fallback_cycles 10"));
    }
}
