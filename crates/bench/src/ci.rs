//! The CI perf-regression gate: a deterministic cost report in JSON.
//!
//! Wall-clock numbers are useless as a CI gate (shared runners jitter
//! by 2×), but the paper's actual cost model — garbled tables, table
//! bytes, OTs — is exactly reproducible. [`report`] runs both engines
//! on the small Table 1 circuits and serialises every counter; CI diffs
//! the output against the checked-in baseline
//! (`crates/bench/baselines/BENCH_ci.json`) and fails on any drift.
//!
//! The report deliberately omits the shard count it was produced with:
//! sharding is transport-only, so the gate doubles as a CI-enforced
//! proof that counts are shard-invariant (the workflow runs it sharded
//! against the unsharded baseline).

use std::fmt::Write as _;

use arm2gc_core::{OtBackend, ShardConfig, StreamConfig, TwoPartyConfig};

use crate::runner::{run_baseline_sharded, run_skipgate_with, table1_circuits};

/// Identifies the report layout; bump when fields change.
pub const SCHEMA: &str = "arm2gc-bench-ci/v1";

/// Builds the deterministic cost report for the small (quick) Table 1
/// circuits, running both engines at the given shard count.
///
/// The returned string is complete JSON, newline-terminated, with a
/// stable field order — suitable for byte-exact diffing.
pub fn report(shards: ShardConfig) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
    out.push_str(
        "  \"note\": \"deterministic gate/table/byte counts; wall-clock excluded by design\",\n",
    );
    out.push_str("  \"circuits\": [\n");
    let circuits = table1_circuits(true);
    for (i, bc) in circuits.iter().enumerate() {
        let skip = run_skipgate_with(
            bc,
            TwoPartyConfig {
                shards,
                ..TwoPartyConfig::default()
            },
        );
        let base = run_baseline_sharded(bc, OtBackend::Insecure, StreamConfig::default(), shards);
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", bc.circuit.name());
        let _ = writeln!(out, "      \"cycles\": {},", bc.cycles);
        let _ = writeln!(
            out,
            "      \"baseline\": {{ \"garbled_tables\": {}, \"table_bytes\": {}, \"ots\": {} }},",
            base.garbled_tables, base.table_bytes, base.ots
        );
        let _ = writeln!(
            out,
            "      \"skipgate\": {{ \"garbled_tables\": {}, \"table_bytes\": {}, \"ots\": {}, \
             \"skipped_nonlinear\": {}, \"public_gates\": {}, \"pass_gates\": {}, \
             \"free_xor\": {} }}",
            skip.garbled_tables,
            skip.table_bytes,
            skip.ots,
            skip.skipped_nonlinear,
            skip.public_gates,
            skip.pass_gates,
            skip.free_xor
        );
        out.push_str(if i + 1 == circuits.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Line-by-line comparison of a fresh report against a baseline;
/// returns the mismatching lines (empty = gate passes).
pub fn diff(baseline: &str, current: &str) -> Vec<String> {
    let mut out = Vec::new();
    let (b_lines, c_lines): (Vec<_>, Vec<_>) =
        (baseline.lines().collect(), current.lines().collect());
    let n = b_lines.len().max(c_lines.len());
    for i in 0..n {
        let b = b_lines.get(i).copied().unwrap_or("<missing>");
        let c = c_lines.get(i).copied().unwrap_or("<missing>");
        if b != c {
            out.push(format!(
                "line {}: baseline `{}` != current `{}`",
                i + 1,
                b,
                c
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_reports_changed_lines_only() {
        assert!(diff("a\nb\n", "a\nb\n").is_empty());
        let d = diff("a\nb\n", "a\nc\nd\n");
        assert_eq!(d.len(), 2);
        assert!(d[0].contains("line 2"));
        assert!(d[1].contains("<missing>"));
    }
}
