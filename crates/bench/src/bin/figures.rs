//! Regenerates the paper's **figures** as executable demonstrations:
//!
//! * Fig. 1 — Phase-1 rewrites (categories i–ii),
//! * Fig. 2 — Phase-2 rewrites (categories iii–iv),
//! * Fig. 3 — recursive `label_fanout` reduction,
//! * Fig. 5 — conditional execution keeps the PC public (cost of the
//!   cond-exec max() vs the same function with a secret branch),
//! * Fig. 6 — a secret branch makes the PC secret and the cost explode.

use arm2gc_circuit::{CircuitBuilder, Role};
use arm2gc_core::{run_two_party, DecideContext, GateDecision, TagAllocator, WireVal};
use arm2gc_cpu::asm::assemble;
use arm2gc_cpu::machine::{CpuConfig, GcMachine};

fn main() {
    figure_1_and_2();
    figure_3();
    figures_5_and_6();
}

fn decide_demo(c: &arm2gc_circuit::Circuit) -> Vec<GateDecision> {
    let mut alloc = TagAllocator::new();
    let mut states = vec![WireVal::Public(false); c.wire_count()];
    for input in c.inputs() {
        states[input.wire.index()] = match input.role {
            Role::Public => WireVal::Public(true),
            _ => WireVal::Secret(alloc.fresh()),
        };
    }
    for &(w, v) in c.consts() {
        states[w.index()] = WireVal::Public(v);
    }
    let ctx = DecideContext::new(c);
    ctx.decide_cycle(&mut states, &mut alloc, true).decisions
}

fn figure_1_and_2() {
    println!("## Figure 1 — Phase 1 gate rewrites (categories i-ii)");
    let mut b = CircuitBuilder::new("fig1");
    let s = b.input(Role::Alice);
    let zero = b.constant(false);
    let one = b.constant(true);
    let gates = [
        ("1 AND 0 (cat i)", b.and(one, zero)),
        ("S AND 0 (cat ii)", b.and(s, zero)),
        ("S AND 1 (cat ii)", b.and(s, one)),
        ("S XOR 1 (cat ii)", b.xor(s, one)),
    ];
    for (_, w) in &gates {
        b.output(*w);
    }
    let c = b.build();
    for ((name, _), d) in gates.iter().zip(decide_demo(&c)) {
        println!("  {name:20} -> {d:?}");
    }

    println!("\n## Figure 2 — Phase 2 gate rewrites (categories iii-iv)");
    let mut b = CircuitBuilder::new("fig2");
    let s = b.input(Role::Alice);
    let t = b.input(Role::Bob);
    let ns = b.not(s);
    let gates = [
        ("S XOR S (cat iii)", b.xor(s, s)),
        ("S XOR !S (cat iii)", b.xor(s, ns)),
        ("S AND S (cat iii)", b.and(s, s)),
        ("S AND T (cat iv)", b.and(s, t)),
    ];
    for (_, w) in &gates {
        b.output(*w);
    }
    let c = b.build();
    let ds = decide_demo(&c);
    // Gate 0 is the NOT; the examples start at index 1.
    for ((name, _), d) in gates.iter().zip(&ds[1..]) {
        println!("  {name:20} -> {d:?}");
    }
    println!();
}

fn figure_3() {
    println!("## Figure 3 — recursive label_fanout reduction");
    let mut b = CircuitBuilder::new("fig3");
    let s1 = b.input(Role::Alice);
    let s2 = b.input(Role::Bob);
    let s3 = b.input(Role::Alice);
    let zero = b.constant(false);
    let g1 = b.and(s1, s2);
    let g2 = b.or(g1, s3);
    let g3 = b.and(g2, zero); // public 0 kills the whole chain
    let live = b.and(s1, s3);
    b.outputs(&[g3, live]);
    let c = b.build();
    let names = [
        "g1 = s1 AND s2",
        "g2 = g1 OR s3",
        "g3 = g2 AND 0",
        "live = s1 AND s3",
    ];
    for (name, d) in names.iter().zip(decide_demo(&c)) {
        println!("  {name:18} -> {d:?}");
    }
    println!("  (g3's public 0 recursively skips g2 and then g1 — Alg. 6)\n");
}

fn figures_5_and_6() {
    println!("## Figures 5 & 6 — conditional execution vs a secret branch");
    let machine = GcMachine::new(CpuConfig::small());

    // Fig. 5 style: max(a, b) with conditional execution — PC stays public.
    let cond_exec = assemble(
        "ldr r0, [r8]
         ldr r1, [r9]
         cmp r0, r1
         movlo r0, r1
         str r0, [r10]
         halt",
    )
    .expect("cond-exec program");

    // Fig. 6 style: the same function with a branch on the secret flags —
    // the PC (and everything fetched afterwards) becomes secret.
    let secret_branch = assemble(
        "       ldr r0, [r8]
                ldr r1, [r9]
                cmp r0, r1
                bhs done
                mov r0, r1
         done:  str r0, [r10]
                halt",
    )
    .expect("branch program");

    let (run_a, stats_a) = machine.run_skipgate(&cond_exec, &[123], &[456], 24);
    // The secret-PC variant cannot detect HALT publicly; bound the cycles.
    let (a, bdata, p) = machine.party_data(&secret_branch, &[123], &[456]);
    let (alice_out, _) = run_two_party(machine.circuit(), &a, &bdata, &p, 8);
    let iss = machine.run_iss(&secret_branch, &[123], &[456], 8);
    let max_from_secret = &alice_out.final_output()[..32];
    let got: u32 = max_from_secret
        .iter()
        .enumerate()
        .fold(0, |acc, (i, &bit)| acc | ((bit as u32) << i));
    assert_eq!(got, iss.output[0], "secret-branch run must stay correct");
    assert_eq!(run_a.output[0], 456);

    println!(
        "  cond-exec max():      {:>10} garbled tables",
        stats_a.garbled_tables
    );
    println!(
        "  secret-branch max():  {:>10} garbled tables (8-cycle bound)",
        alice_out.stats.garbled_tables
    );
    println!(
        "  explosion factor:     {:>10.1}x — why §4.2 insists on conditional execution",
        alice_out.stats.garbled_tables as f64 / stats_a.garbled_tables as f64
    );
}
