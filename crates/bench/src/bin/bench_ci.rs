//! CI perf-regression gate: emits the deterministic cost report
//! (`BENCH_ci.json`) and optionally diffs it against a checked-in
//! baseline.
//!
//! Usage: `bench_ci [--shards N] [--out PATH] [--check BASELINE]`
//!
//! * `--shards N` — run both engines over an N-way sharded table stream
//!   (the report is shard-invariant, so CI runs sharded against the
//!   unsharded baseline to enforce exactly that);
//! * `--out PATH` — write the JSON report to `PATH` (also printed when
//!   neither `--out` nor `--check` is given);
//! * `--check BASELINE` — compare against `BASELINE` and exit non-zero
//!   listing every drifted line.
//!
//! Independently of `--check`, the run fails whenever any circuit
//! reports `fallback_cycles > 0`: per-cycle re-leveling made the
//! layered fallback unreachable, and the gate keeps it that way even
//! across intentional baseline regenerations.

use arm2gc_bench::ci;
use arm2gc_core::ShardConfig;

fn arg_after(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let shards = ShardConfig::new(
        arg_after("--shards")
            .map(|s| s.parse().expect("--shards takes a positive integer"))
            .unwrap_or(1),
    );
    let report = ci::report(shards);

    let fallbacks = ci::fallback_violations(&report);
    if !fallbacks.is_empty() {
        eprintln!(
            "bench_ci: FAIL — layered schedule fell back to the netlist walk \
             ({} circuit(s)):",
            fallbacks.len()
        );
        for line in &fallbacks {
            eprintln!("  {line}");
        }
        std::process::exit(1);
    }

    let out = arg_after("--out");
    if let Some(path) = &out {
        std::fs::write(path, &report).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("bench_ci: wrote {path} ({} bytes)", report.len());
    }

    match arg_after("--check") {
        Some(baseline_path) => {
            let baseline = std::fs::read_to_string(&baseline_path)
                .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
            let drift = ci::diff(&baseline, &report);
            if drift.is_empty() {
                println!(
                    "bench_ci: OK — cost counts match {baseline_path} (shards={})",
                    shards.shards
                );
            } else {
                eprintln!(
                    "bench_ci: FAIL — cost counts drifted from {baseline_path} \
                     ({} line(s)):",
                    drift.len()
                );
                for line in &drift {
                    eprintln!("  {line}");
                }
                eprintln!(
                    "If the change is intentional, regenerate the baseline with \
                     `cargo run --release -p arm2gc-bench --bin bench_ci -- --out {baseline_path}`"
                );
                std::process::exit(1);
            }
        }
        None if out.is_none() => print!("{report}"),
        None => {}
    }
}
