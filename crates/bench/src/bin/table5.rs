//! Regenerates **Table 5**: SkipGate on the complex functions
//! (Bubble-Sort, Merge-Sort, Dijkstra, CORDIC) with XOR-shared inputs.
//!
//! `--quick` runs the sorts at n = 8 instead of 32.

use arm2gc_bench::runner::{complex_workloads, machine_for};
use arm2gc_bench::{fmt_count, paper, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut table = Table::new(
        "Table 5 — complex functions on the garbled CPU (garbled non-XOR gates)",
        &[
            "Function",
            "cycles",
            "w/o SkipGate",
            "w/ SkipGate",
            "improv. (1000X)",
            "paper w/o",
            "paper w/",
        ],
    );
    let mut machines: Vec<(
        arm2gc_cpu::machine::CpuConfig,
        arm2gc_cpu::machine::GcMachine,
    )> = Vec::new();
    for w in complex_workloads(quick) {
        let idx = match machines.iter().position(|(c, _)| *c == w.config) {
            Some(i) => i,
            None => {
                machines.push((w.config, machine_for(w.config)));
                machines.len() - 1
            }
        };
        let machine = &machines[idx].1;
        let (cycles, stats) = w.measure(machine);
        let baseline = machine.baseline_cost(cycles);
        let paper_row = paper::TABLE5
            .iter()
            .find(|r| normalise(r.name) == normalise(&w.name));
        table.row(vec![
            w.name.clone(),
            fmt_count(cycles as u128),
            fmt_count(baseline),
            fmt_count(stats.garbled_tables as u128),
            fmt_count(baseline / stats.garbled_tables.max(1) as u128 / 1000),
            paper_row.map_or("-".into(), |r| fmt_count(r.without)),
            paper_row.map_or("-".into(), |r| fmt_count(r.with as u128)),
        ]);
    }
    table.print();
    if quick {
        println!("(--quick: sorts at n = 8; run without --quick for the paper's n = 32)");
    }
}

fn normalise(name: &str) -> String {
    name.to_lowercase()
        .replace([' ', '_'], "")
        .replace("matmul", "matrixmult")
}
