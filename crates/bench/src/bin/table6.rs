//! Regenerates **Table 6**: qualitative comparison of secure-computation
//! frameworks, with the one measurable property — dynamic gate
//! elimination — demonstrated live.

use arm2gc_bench::runner::a_op_a_measurement;
use arm2gc_bench::Table;

fn main() {
    let mut table = Table::new(
        "Table 6 — high-level characteristics of secure computation frameworks",
        &["Framework", "Lang.", "Compiler", "CP", "DCE", "DGE"],
    );
    let rows: &[[&str; 6]] = &[
        ["CBMC-GC", "ANSI-C", "Cust.", "yes", "yes", "no"],
        ["KSS", "DSL", "Cust.", "no", "yes", "no"],
        ["PCF", "ANSI-C", "Cust.", "yes", "yes", "no"],
        ["ObliVM", "DSL", "Cust.", "no", "no", "no"],
        ["Obliv-C", "DSL", "Cust.", "yes", "yes", "no"],
        ["TinyGarble", "HDL", "HW Synth.", "no", "yes", "no"],
        ["Frigate", "DSL", "Cust.", "yes", "yes", "no"],
        ["ARM2GC", "C/C++ (any)", "ARM", "yes", "yes", "yes"],
    ];
    for r in rows {
        table.row(r.iter().map(|s| s.to_string()).collect());
    }
    table.print();
    println!("CP = constant propagation, DCE = dead-code elimination,");
    println!("DGE = dynamic (run-time) gate elimination — SkipGate's contribution.");
    println!();
    println!(
        "live DGE demonstration: 'a = a & a' garbles {} tables (Table 3's 0-gate row)",
        a_op_a_measurement()
    );
}
