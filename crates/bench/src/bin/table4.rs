//! Regenerates **Table 4**: improvement by SkipGate on the garbled
//! processor itself.
//!
//! The "w/o SkipGate" column is `cycles × processor-non-XOR` — the cost
//! of conventionally garbling the whole CPU every cycle (the paper's own
//! ≈5×10¹⁰-gate entries are computed the same way; actually garbling
//! them is infeasible anywhere). The "w/ SkipGate" column is a real
//! two-party run.

use arm2gc_bench::runner::{cpu_workloads, machine_for};
use arm2gc_bench::{fmt_count, paper, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut table = Table::new(
        "Table 4 — SkipGate on the garbled ARM-like CPU (garbled non-XOR gates)",
        &[
            "Function",
            "cycles",
            "w/o SkipGate",
            "w/ SkipGate",
            "improv. (1000X)",
            "paper w/o",
            "paper w/",
        ],
    );
    let mut machines: Vec<(
        arm2gc_cpu::machine::CpuConfig,
        arm2gc_cpu::machine::GcMachine,
    )> = Vec::new();
    for w in cpu_workloads(quick) {
        let idx = match machines.iter().position(|(c, _)| *c == w.config) {
            Some(i) => i,
            None => {
                machines.push((w.config, machine_for(w.config)));
                machines.len() - 1
            }
        };
        let machine = &machines[idx].1;
        let (cycles, stats) = w.measure(machine);
        let baseline = machine.baseline_cost(cycles);
        let paper_row = paper::TABLE4
            .iter()
            .find(|r| normalise(r.name) == normalise(&w.name));
        let improv = baseline / (stats.garbled_tables.max(1) as u128) / 1000;
        table.row(vec![
            w.name.clone(),
            fmt_count(cycles as u128),
            fmt_count(baseline),
            fmt_count(stats.garbled_tables as u128),
            fmt_count(improv),
            paper_row.map_or("-".into(), |r| fmt_count(r.without)),
            paper_row.map_or("-".into(), |r| fmt_count(r.with as u128)),
        ]);
    }
    table.print();
    let nx = machines
        .iter()
        .map(|(_, m)| m.circuit().non_xor_count())
        .max()
        .unwrap_or(0);
    println!(
        "our CPU: {} non-XOR gates per cycle (paper's Amber-based netlist: 126,755)",
        fmt_count(nx as u128)
    );
}

fn normalise(name: &str) -> String {
    name.to_lowercase()
        .replace([' ', '_'], "")
        .replace("matmul", "matrixmult")
}
