//! Regenerates **Table 2**: ARM2GC (programs on the garbled processor)
//! vs the HDL-synthesis flow (direct circuits), both under SkipGate.
//!
//! AES-128 and SHA3-256 rows reuse the direct-circuit measurements: the
//! paper's C sources for those are bitsliced gate-by-gate translations
//! of the same netlists (see EXPERIMENTS.md), which we do not re-author
//! in assembly. Pass `--quick` for the small matrix sizes only.

use arm2gc_bench::runner::{cpu_workloads, machine_for, run_skipgate, table1_circuits};
use arm2gc_bench::{fmt_count, paper, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    // HDL column: direct circuits under SkipGate.
    let mut hdl: Vec<(String, u64)> = Vec::new();
    for bc in table1_circuits(quick) {
        let stats = run_skipgate(&bc);
        hdl.push((bc.circuit.name().to_string(), stats.garbled_tables));
    }

    let mut table = Table::new(
        "Table 2 — ARM2GC (asm on the garbled CPU) vs HDL synthesis (both with SkipGate)",
        &[
            "Function",
            "TinyGarble-style (HDL)",
            "ARM2GC (CPU)",
            "overhead",
            "paper HDL",
            "paper ARM2GC",
        ],
    );

    let mut machines: Vec<(
        arm2gc_cpu::machine::CpuConfig,
        arm2gc_cpu::machine::GcMachine,
    )> = Vec::new();
    for w in cpu_workloads(quick) {
        let idx = match machines.iter().position(|(c, _)| *c == w.config) {
            Some(i) => i,
            None => {
                machines.push((w.config, machine_for(w.config)));
                machines.len() - 1
            }
        };
        let (_cycles, stats) = w.measure(&machines[idx].1);
        let hdl_count = hdl
            .iter()
            .find(|(n, _)| normalise(n) == normalise(&w.name))
            .map(|(_, c)| *c);
        let paper_row = paper::TABLE2
            .iter()
            .find(|r| normalise(r.name) == normalise(&w.name));
        let overhead = hdl_count
            .map(|h| {
                format!(
                    "{:+.2}%",
                    100.0 * (stats.garbled_tables as f64 - h as f64) / h as f64
                )
            })
            .unwrap_or_else(|| "-".into());
        table.row(vec![
            w.name.clone(),
            hdl_count.map_or("-".into(), |h| fmt_count(h as u128)),
            fmt_count(stats.garbled_tables as u128),
            overhead,
            paper_row.map_or("-".into(), |r| fmt_count(r.tinygarble as u128)),
            paper_row.map_or("-".into(), |r| fmt_count(r.arm2gc as u128)),
        ]);
    }
    // Circuit-substituted rows.
    for name in ["sha3_256", "aes_128"] {
        if let Some((n, c)) = hdl.iter().find(|(n, _)| n == name) {
            let paper_row = paper::TABLE2
                .iter()
                .find(|r| normalise(r.name) == normalise(n));
            table.row(vec![
                format!("{n} (circuit†)"),
                fmt_count(*c as u128),
                fmt_count(*c as u128),
                "0.00%".into(),
                paper_row.map_or("-".into(), |r| fmt_count(r.tinygarble as u128)),
                paper_row.map_or("-".into(), |r| fmt_count(r.arm2gc as u128)),
            ]);
        }
    }
    table.print();
    println!("† bitsliced-C substitution: measured on the direct circuit (EXPERIMENTS.md)");
}

fn normalise(name: &str) -> String {
    name.to_lowercase()
        .replace([' ', '_'], "")
        .replace("matmul", "matrixmult")
}
