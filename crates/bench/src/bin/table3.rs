//! Regenerates **Table 3**: ARM2GC vs the best prior high-level-language
//! frameworks (CBMC-GC, Frigate).
//!
//! The comparator columns are the published numbers (those tools are
//! closed or bit-rotted academic artifacts — DESIGN.md); our ARM2GC
//! column is measured live, including the `a = a op a` dynamic-gate-
//! elimination demonstration.

use arm2gc_bench::runner::{a_op_a_measurement, cpu_workloads, machine_for};
use arm2gc_bench::{fmt_count, paper, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut measured: Vec<(String, u64)> = Vec::new();
    let mut machines: Vec<(
        arm2gc_cpu::machine::CpuConfig,
        arm2gc_cpu::machine::GcMachine,
    )> = Vec::new();
    for w in cpu_workloads(quick) {
        let idx = match machines.iter().position(|(c, _)| *c == w.config) {
            Some(i) => i,
            None => {
                machines.push((w.config, machine_for(w.config)));
                machines.len() - 1
            }
        };
        let (_, stats) = w.measure(&machines[idx].1);
        measured.push((w.name.clone(), stats.garbled_tables));
    }
    measured.push(("a = a op a".into(), a_op_a_measurement()));

    let mut table = Table::new(
        "Table 3 — ARM2GC vs high-level GC frameworks (non-XOR gates)",
        &[
            "Function",
            "CBMC-GC (paper)",
            "Frigate (paper)",
            "ARM2GC (measured)",
            "ARM2GC (paper)",
        ],
    );
    for row in paper::TABLE3 {
        let ours = measured
            .iter()
            .find(|(n, _)| normalise(n) == normalise(row.name))
            .map(|(_, c)| *c);
        table.row(vec![
            row.name.to_string(),
            row.cbmc_gc.map_or("-".into(), |v| fmt_count(v as u128)),
            row.frigate.map_or("-".into(), |v| fmt_count(v as u128)),
            ours.map_or("(see table1/2)".into(), |v| fmt_count(v as u128)),
            fmt_count(row.arm2gc as u128),
        ]);
    }
    table.print();
    println!(
        "Garbled-MIPS comparison (§5.3): Hamming over 32 32-bit ints — \
         MIPS {} vs ARM2GC {} (paper), 156x",
        fmt_count(paper::GARBLED_MIPS_HAMMING_32X32 as u128),
        fmt_count(paper::ARM2GC_HAMMING_32X32 as u128),
    );
}

fn normalise(name: &str) -> String {
    name.to_lowercase()
        .replace([' ', '_'], "")
        .replace("matmul", "matrixmult")
}
