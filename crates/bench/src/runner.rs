//! Shared measurement runners for the table binaries.

use arm2gc_circuit::bench_circuits::{self, BenchCircuit};
use arm2gc_circuit::random::TestRng;
use arm2gc_circuit::sim::PartyData;
use arm2gc_comm::duplex;
use arm2gc_core::{
    run_two_party, run_two_party_cfg, run_two_party_instanced_cfg, shard_duplexes,
    InstancedOutcome, OtBackend, OtConfig, ScheduleMode, ShardConfig, SkipGateOutcome,
    SkipGateStats, TwoPartyConfig,
};
use arm2gc_cpu::asm::{assemble, Program};
use arm2gc_cpu::machine::{CpuConfig, GcMachine};
use arm2gc_cpu::programs;
use arm2gc_crypto::Prg;
use arm2gc_garble::{
    run_evaluator_scheduled, run_garbler_scheduled, GarbleOutcome, GarbleStats, StreamConfig,
};

/// Measured circuit-level result: baseline vs SkipGate.
#[derive(Clone, Copy, Debug)]
pub struct CircuitMeasurement {
    /// Conventional sequential GC tables (garbled for real when
    /// feasible; identical to `cycles × non-XOR`).
    pub baseline: u128,
    /// SkipGate tables actually transferred.
    pub skipgate: u64,
}

/// Runs a benchmark circuit under the classic engine (real garbling)
/// with the default session configuration.
pub fn run_baseline(bc: &BenchCircuit) -> GarbleStats {
    run_baseline_with(bc, OtBackend::Insecure, StreamConfig::default())
}

/// [`run_baseline`] with an explicit OT backend and table-streaming
/// configuration.
pub fn run_baseline_with(bc: &BenchCircuit, ot: OtBackend, stream: StreamConfig) -> GarbleStats {
    run_baseline_sharded(bc, ot, stream, ShardConfig::single())
}

/// [`run_baseline_with`] over a sharded table stream: one in-memory
/// channel pair per shard, mirroring [`run_two_party_cfg`]'s setup.
pub fn run_baseline_sharded(
    bc: &BenchCircuit,
    ot: OtBackend,
    stream: StreamConfig,
    shards: ShardConfig,
) -> GarbleStats {
    run_baseline_outcome(bc, ot, stream, shards, ScheduleMode::Netlist).stats
}

/// [`run_baseline_sharded`] with an explicit execution schedule,
/// returning the garbler's full outcome (cost stats plus batching
/// occupancy). Both parties' outputs are verified against the semantic
/// expectation inside.
pub fn run_baseline_outcome(
    bc: &BenchCircuit,
    ot: OtBackend,
    stream: StreamConfig,
    shards: ShardConfig,
    schedule: ScheduleMode,
) -> GarbleOutcome {
    let (mut ca, mut cb) = duplex();
    let (g_shards, e_shards) = shard_duplexes(shards);
    crossbeam::thread::scope(|s| {
        let g = s.spawn(move |_| {
            let mut prg = Prg::from_seed([91; 16]);
            let mut ot = ot.sender(OtConfig::TEST, &mut prg);
            run_garbler_scheduled(
                &bc.circuit,
                &bc.alice,
                &bc.public,
                bc.cycles,
                &mut ca,
                g_shards,
                ot.as_mut(),
                &mut prg,
                stream,
                shards,
                schedule,
            )
            .expect("baseline garbler")
        });
        let mut prg = Prg::from_seed([92; 16]);
        let mut ot = ot.receiver(OtConfig::TEST, &mut prg);
        let b = run_evaluator_scheduled(
            &bc.circuit,
            &bc.bob,
            bc.cycles,
            &mut cb,
            e_shards,
            ot.as_mut(),
            shards,
            schedule,
        )
        .expect("baseline evaluator");
        let a = g.join().expect("garbler thread");
        assert_eq!(a.outputs, b.outputs);
        let got: Vec<bool> = a.outputs.concat();
        assert_eq!(got, bc.expected, "baseline output mismatch");
        a
    })
    // Re-raise with the original payload so assertion messages from
    // either party survive the scope's catch_unwind.
    .unwrap_or_else(|e| std::panic::resume_unwind(e))
}

/// Runs a benchmark circuit under SkipGate (real two-party run) and
/// verifies the output against the semantic expectation.
pub fn run_skipgate(bc: &BenchCircuit) -> SkipGateStats {
    run_skipgate_with(bc, TwoPartyConfig::default())
}

/// [`run_skipgate`] with an explicit session configuration (OT backend,
/// table streaming, sharding, execution schedule, SkipGate options).
pub fn run_skipgate_with(bc: &BenchCircuit, cfg: TwoPartyConfig) -> SkipGateStats {
    run_skipgate_outcome(bc, cfg).stats
}

/// [`run_skipgate_with`] returning the garbler's full outcome (cost
/// stats plus batching occupancy). Both parties' outputs are verified
/// against the semantic expectation inside.
pub fn run_skipgate_outcome(bc: &BenchCircuit, cfg: TwoPartyConfig) -> SkipGateOutcome {
    let (a, b) = run_two_party_cfg(&bc.circuit, &bc.alice, &bc.bob, &bc.public, bc.cycles, cfg);
    assert_eq!(a.outputs, b.outputs);
    let got: Vec<bool> = a.outputs.concat();
    assert_eq!(got, bc.expected, "skipgate output mismatch");
    a
}

/// Runs `instances` lanes of a benchmark circuit — the same inputs in
/// every lane — through one instanced session
/// ([`run_two_party_instanced_cfg`]) and verifies every lane's outputs
/// against the semantic expectation. Returns the garbler's
/// [`InstancedOutcome`]: per-lane cost counters plus the session-wide
/// batching occupancy (per-instance amortized via
/// [`arm2gc_garble::WavefrontStats::mean_batch_per_instance`]).
pub fn run_skipgate_instanced_outcome(
    bc: &BenchCircuit,
    cfg: TwoPartyConfig,
    instances: usize,
) -> InstancedOutcome {
    let alices = vec![bc.alice.clone(); instances];
    let bobs = vec![bc.bob.clone(); instances];
    let publics = vec![bc.public.clone(); instances];
    let (a, b) = run_two_party_instanced_cfg(&bc.circuit, &alices, &bobs, &publics, bc.cycles, cfg);
    assert_eq!(a.batching, b.batching, "instanced batching stats differ");
    for (lane, (la, lb)) in a.lanes.iter().zip(&b.lanes).enumerate() {
        assert_eq!(la.outputs, lb.outputs, "lane {lane}: party outputs differ");
        let got: Vec<bool> = la.outputs.concat();
        assert_eq!(got, bc.expected, "lane {lane}: instanced output mismatch");
    }
    a
}

/// Measures one circuit both ways. `garble_baseline` controls whether
/// the baseline is actually executed (large circuits use the static
/// count, like the paper's processor rows).
pub fn measure_circuit(bc: &BenchCircuit, garble_baseline: bool) -> CircuitMeasurement {
    let skip = run_skipgate(bc);
    let baseline = if garble_baseline {
        let stats = run_baseline(bc);
        stats.garbled_tables as u128
    } else {
        arm2gc_garble::static_non_xor_cost(&bc.circuit, bc.cycles)
    };
    CircuitMeasurement {
        baseline,
        skipgate: skip.garbled_tables,
    }
}

/// All Table 1 benchmark circuits with deterministic inputs.
pub fn table1_circuits(quick: bool) -> Vec<BenchCircuit> {
    let mut rng = TestRng::new(20_260_611);
    let mut words = |n: usize| -> Vec<u32> { (0..n).map(|_| rng.next_u64() as u32).collect() };
    let mut out = vec![
        bench_circuits::sum(32, 0xdead_beef, 0x600d_f00d),
        bench_circuits::sum(1024, u64::MAX, 0x1234_5678),
        bench_circuits::compare(32, 77, 999),
        bench_circuits::compare(16384, u64::MAX, 3),
        bench_circuits::hamming(32, &words(1), &words(1)),
        bench_circuits::hamming(160, &words(5), &words(5)),
        bench_circuits::hamming(512, &words(16), &words(16)),
        bench_circuits::mult(32, 0xdead_beef, 0x1234_5678),
        bench_circuits::matrix_mult(3, &words(9), &words(9)),
    ];
    if !quick {
        out.push(bench_circuits::matrix_mult(5, &words(25), &words(25)));
        out.push(bench_circuits::matrix_mult(8, &words(64), &words(64)));
    }
    out.push(bench_circuits::sha3_256(b"arm2gc reproduction"));
    let key: Vec<u8> = (0..16).collect();
    let pt: Vec<u8> = (16..32).collect();
    out.push(bench_circuits::aes128(
        key.try_into().expect("16"),
        pt.try_into().expect("16"),
    ));
    out
}

/// A CPU workload: a program plus inputs and a cycle bound.
pub struct CpuWorkload {
    /// Display name matching the paper's tables.
    pub name: String,
    /// Machine geometry.
    pub config: CpuConfig,
    /// Assembled program.
    pub program: Program,
    /// Alice's input words.
    pub alice: Vec<u32>,
    /// Bob's input words.
    pub bob: Vec<u32>,
    /// Cycle bound (generous; the program halts earlier).
    pub max_cycles: usize,
}

impl CpuWorkload {
    /// Builds a workload from assembly source.
    pub fn new(
        name: impl Into<String>,
        config: CpuConfig,
        src: &str,
        alice: Vec<u32>,
        bob: Vec<u32>,
        max_cycles: usize,
    ) -> Self {
        Self {
            name: name.into(),
            config,
            program: assemble(src).expect("benchmark program assembles"),
            alice,
            bob,
            max_cycles,
        }
    }

    /// Runs under SkipGate on `machine` (must match `config`), verifying
    /// against the ISS, and returns `(cycles, stats)`.
    pub fn measure(&self, machine: &GcMachine) -> (usize, SkipGateStats) {
        let iss = machine.run_iss(&self.program, &self.alice, &self.bob, self.max_cycles);
        assert!(iss.halted, "{}: program did not halt", self.name);
        let (run, stats) =
            machine.run_skipgate(&self.program, &self.alice, &self.bob, self.max_cycles);
        assert_eq!(run.output, iss.output, "{}: protocol diverged", self.name);
        (run.cycles, stats)
    }
}

/// The Table 2/4 CPU workloads. `quick` trims the largest sizes so the
/// harness stays interactive.
pub fn cpu_workloads(quick: bool) -> Vec<CpuWorkload> {
    let mut rng = TestRng::new(42_4242);
    let mut words = |n: usize| -> Vec<u32> { (0..n).map(|_| rng.next_u64() as u32).collect() };
    let small = CpuConfig::bench();
    let wide = CpuConfig {
        alice_words: 1024,
        bob_words: 1024,
        ..CpuConfig::bench()
    };
    let mut out = vec![
        CpuWorkload::new("Sum 32", small, &programs::sum32(), words(1), words(1), 100),
        CpuWorkload::new(
            "Sum 1024",
            small,
            &programs::sum_wide(32),
            words(32),
            words(32),
            2_000,
        ),
        CpuWorkload::new(
            "Compare 32",
            small,
            &programs::compare32(),
            words(1),
            words(1),
            100,
        ),
        CpuWorkload::new(
            "Hamming 32",
            small,
            &programs::hamming(1),
            words(1),
            words(1),
            200,
        ),
        CpuWorkload::new(
            "Hamming 160",
            small,
            &programs::hamming(5),
            words(5),
            words(5),
            2_000,
        ),
        CpuWorkload::new(
            "Hamming 512",
            small,
            &programs::hamming(16),
            words(16),
            words(16),
            4_000,
        ),
        CpuWorkload::new(
            "Mult 32",
            small,
            &programs::mult32(),
            words(1),
            words(1),
            100,
        ),
        CpuWorkload::new(
            "MatrixMult3x3 32",
            small,
            &programs::matmul(3),
            words(9),
            words(9),
            10_000,
        ),
    ];
    if !quick {
        out.push(CpuWorkload::new(
            "Compare 16384",
            wide,
            &programs::compare_wide(512),
            words(512),
            words(512),
            20_000,
        ));
        out.push(CpuWorkload::new(
            "MatrixMult5x5 32",
            small,
            &programs::matmul(5),
            words(25),
            words(25),
            40_000,
        ));
        out.push(CpuWorkload::new(
            "MatrixMult8x8 32",
            small,
            &programs::matmul(8),
            words(64),
            words(64),
            160_000,
        ));
    }
    out
}

/// The Table 5 complex-function workloads (XOR-shared inputs).
pub fn complex_workloads(quick: bool) -> Vec<CpuWorkload> {
    let mut rng = TestRng::new(55_555);
    let cfg = CpuConfig::bench();
    let n_sort = if quick { 8 } else { 32 };
    let nodes = 8; // 64 weighted edges, as in the paper
    const INF: u32 = 0x3f00_0000;
    let mut adj: Vec<u32> = (0..nodes * nodes)
        .map(|i| {
            let (u, v) = (i / nodes, i % nodes);
            if u == v {
                INF
            } else {
                1 + (rng.next_u64() % 97) as u32
            }
        })
        .collect();
    // Keep some edges missing for realism.
    for edge in adj.iter_mut() {
        if rng.below(3) == 0 {
            *edge = INF;
        }
    }
    let mut words = |n: usize| -> Vec<u32> { (0..n).map(|_| rng.next_u64() as u32).collect() };
    let bob_adj = words(nodes * nodes);
    let adj_share: Vec<u32> = adj.iter().zip(&bob_adj).map(|(a, b)| a ^ b).collect();

    let angle = (0.6f64 * (1u64 << 30) as f64) as u32;
    let x0 = (0.607_252_935 * (1u64 << 30) as f64) as u32;
    let cordic_bob = words(3);
    let cordic_alice = vec![x0 ^ cordic_bob[0], cordic_bob[1], angle ^ cordic_bob[2]];

    vec![
        CpuWorkload::new(
            format!("Bubble-Sort{n_sort} 32"),
            cfg,
            &programs::bubble_sort(n_sort),
            words(n_sort),
            words(n_sort),
            2_000_000,
        ),
        CpuWorkload::new(
            format!("Merge-Sort{n_sort} 32"),
            cfg,
            &programs::merge_sort(n_sort),
            words(n_sort),
            words(n_sort),
            2_000_000,
        ),
        CpuWorkload::new(
            "Dijkstra64 32",
            cfg,
            &programs::dijkstra(nodes),
            adj_share,
            bob_adj,
            200_000,
        ),
        CpuWorkload::new(
            "CORDIC 32",
            cfg,
            &programs::cordic(32),
            cordic_alice,
            cordic_bob,
            10_000,
        ),
    ]
}

/// Builds (and caches per call site) a machine for a config.
pub fn machine_for(config: CpuConfig) -> GcMachine {
    GcMachine::new(config)
}

/// The "a = a op a" demonstration circuit (Table 3's last data row):
/// a 32-bit value ANDed with itself. SkipGate sends zero tables.
pub fn a_op_a_measurement() -> u64 {
    use arm2gc_circuit::{CircuitBuilder, Role};
    let mut b = CircuitBuilder::new("a_and_a");
    let a = b.inputs(Role::Alice, 32);
    let o: Vec<_> = a.iter().map(|&w| b.and(w, w)).collect();
    b.outputs(&o);
    let c = b.build();
    let data = PartyData::from_stream(vec![vec![true; 32]]);
    let (out, _) = run_two_party(&c, &data, &PartyData::default(), &PartyData::default(), 1);
    out.stats.garbled_tables
}
