//! The paper's published numbers (Tables 1–5), kept verbatim so every
//! harness binary can print paper-vs-measured side by side.
//!
//! Comparator columns (CBMC-GC, Frigate, garbled MIPS) are published
//! results of closed or bit-rotted academic artifacts; re-running them is
//! out of scope (see DESIGN.md substitutions), so the paper's own
//! numbers stand in.

/// One row of Table 1 (SkipGate on TinyGarble sequential circuits).
#[derive(Clone, Copy, Debug)]
pub struct Table1Row {
    /// Function name as printed in the paper.
    pub name: &'static str,
    /// Garbled non-XOR gates without SkipGate.
    pub without: u64,
    /// With SkipGate.
    pub with: u64,
}

/// Table 1 of the paper.
pub const TABLE1: &[Table1Row] = &[
    Table1Row {
        name: "Sum 32",
        without: 32,
        with: 31,
    },
    Table1Row {
        name: "Sum 1024",
        without: 1_024,
        with: 1_023,
    },
    Table1Row {
        name: "Compare 32",
        without: 32,
        with: 32,
    },
    Table1Row {
        name: "Compare 16384",
        without: 16_384,
        with: 16_384,
    },
    Table1Row {
        name: "Hamming 32",
        without: 160,
        with: 145,
    },
    Table1Row {
        name: "Hamming 160",
        without: 1_120,
        with: 1_092,
    },
    Table1Row {
        name: "Hamming 512",
        without: 4_608,
        with: 4_563,
    },
    Table1Row {
        name: "Mult 32",
        without: 2_048,
        with: 2_016,
    },
    Table1Row {
        name: "MatrixMult3x3 32",
        without: 25_947,
        with: 25_668,
    },
    Table1Row {
        name: "MatrixMult5x5 32",
        without: 120_125,
        with: 119_350,
    },
    Table1Row {
        name: "MatrixMult8x8 32",
        without: 492_032,
        with: 490_048,
    },
    Table1Row {
        name: "SHA3 256",
        without: 40_032,
        with: 38_400,
    },
    Table1Row {
        name: "AES 128",
        without: 15_807,
        with: 6_400,
    },
];

/// One row of Table 2 (ARM2GC vs TinyGarble HDL synthesis).
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Function name.
    pub name: &'static str,
    /// TinyGarble (Verilog) non-XOR count.
    pub tinygarble: u64,
    /// ARM2GC (C on the garbled processor) non-XOR count.
    pub arm2gc: u64,
}

/// Table 2 of the paper.
pub const TABLE2: &[Table2Row] = &[
    Table2Row {
        name: "Sum 32",
        tinygarble: 31,
        arm2gc: 31,
    },
    Table2Row {
        name: "Sum 1024",
        tinygarble: 1_023,
        arm2gc: 1_023,
    },
    Table2Row {
        name: "Compare 32",
        tinygarble: 32,
        arm2gc: 32,
    },
    Table2Row {
        name: "Compare 16384",
        tinygarble: 16_384,
        arm2gc: 16_384,
    },
    Table2Row {
        name: "Hamming 32",
        tinygarble: 145,
        arm2gc: 57,
    },
    Table2Row {
        name: "Hamming 160",
        tinygarble: 1_092,
        arm2gc: 247,
    },
    Table2Row {
        name: "Hamming 512",
        tinygarble: 4_563,
        arm2gc: 1_012,
    },
    Table2Row {
        name: "Mult 32",
        tinygarble: 2_016,
        arm2gc: 993,
    },
    Table2Row {
        name: "MatrixMult3x3 32",
        tinygarble: 25_668,
        arm2gc: 27_369,
    },
    Table2Row {
        name: "MatrixMult5x5 32",
        tinygarble: 119_350,
        arm2gc: 127_225,
    },
    Table2Row {
        name: "MatrixMult8x8 32",
        tinygarble: 490_048,
        arm2gc: 522_304,
    },
    Table2Row {
        name: "SHA3 256",
        tinygarble: 38_400,
        arm2gc: 37_760,
    },
    Table2Row {
        name: "AES 128",
        tinygarble: 6_400,
        arm2gc: 6_400,
    },
];

/// One row of Table 3 (vs high-level frameworks; `None` = not reported).
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// Function name.
    pub name: &'static str,
    /// CBMC-GC non-XOR count.
    pub cbmc_gc: Option<u64>,
    /// Frigate non-XOR count.
    pub frigate: Option<u64>,
    /// ARM2GC non-XOR count.
    pub arm2gc: u64,
}

/// Table 3 of the paper.
pub const TABLE3: &[Table3Row] = &[
    Table3Row {
        name: "Sum 32",
        cbmc_gc: None,
        frigate: Some(31),
        arm2gc: 31,
    },
    Table3Row {
        name: "Sum 1024",
        cbmc_gc: None,
        frigate: Some(1_025),
        arm2gc: 1_023,
    },
    Table3Row {
        name: "Compare 32",
        cbmc_gc: None,
        frigate: Some(32),
        arm2gc: 32,
    },
    Table3Row {
        name: "Compare 16384",
        cbmc_gc: None,
        frigate: Some(16_386),
        arm2gc: 16_384,
    },
    Table3Row {
        name: "Hamming 160",
        cbmc_gc: Some(449),
        frigate: Some(719),
        arm2gc: 247,
    },
    Table3Row {
        name: "Mult 32",
        cbmc_gc: None,
        frigate: Some(995),
        arm2gc: 993,
    },
    Table3Row {
        name: "MatrixMult5x5 32",
        cbmc_gc: Some(127_225),
        frigate: Some(128_252),
        arm2gc: 127_225,
    },
    Table3Row {
        name: "MatrixMult8x8 32",
        cbmc_gc: Some(522_304),
        frigate: None,
        arm2gc: 522_304,
    },
    Table3Row {
        name: "AES 128",
        cbmc_gc: None,
        frigate: Some(10_383),
        arm2gc: 6_400,
    },
    Table3Row {
        name: "a = a op a",
        cbmc_gc: Some(0),
        frigate: Some(0),
        arm2gc: 0,
    },
    Table3Row {
        name: "SHA3 256",
        cbmc_gc: None,
        frigate: None,
        arm2gc: 37_760,
    },
];

/// One row of Table 4 (SkipGate on the garbled ARM).
#[derive(Clone, Copy, Debug)]
pub struct Table4Row {
    /// Function name.
    pub name: &'static str,
    /// Conventional GC on the processor (cycles × processor non-XOR).
    pub without: u128,
    /// With SkipGate.
    pub with: u64,
}

/// Table 4 of the paper.
pub const TABLE4: &[Table4Row] = &[
    Table4Row {
        name: "Sum 32",
        without: 3_817_680,
        with: 31,
    },
    Table4Row {
        name: "Sum 1024",
        without: 76_483_260,
        with: 1_023,
    },
    Table4Row {
        name: "Compare 32",
        without: 4_072_192,
        with: 130,
    },
    Table4Row {
        name: "Compare 16384",
        without: 1_047_095_280,
        with: 16_384,
    },
    Table4Row {
        name: "Hamming 32",
        without: 67_063_912,
        with: 57,
    },
    Table4Row {
        name: "Hamming 160",
        without: 242_931_704,
        with: 247,
    },
    Table4Row {
        name: "Hamming 512",
        without: 863_559_216,
        with: 1_012,
    },
    Table4Row {
        name: "Mult 32",
        without: 4_199_448,
        with: 993,
    },
    Table4Row {
        name: "MatrixMult3x3 32",
        without: 72_790_432,
        with: 27_369,
    },
    Table4Row {
        name: "MatrixMult5x5 32",
        without: 286_071_488,
        with: 127_225,
    },
    Table4Row {
        name: "MatrixMult8x8 32",
        without: 1_079_894_416,
        with: 522_304,
    },
    Table4Row {
        name: "SHA3 256",
        without: 29_354_783_052,
        with: 37_760,
    },
    Table4Row {
        name: "AES 128",
        without: 54_621_701_856,
        with: 6_400,
    },
];

/// One row of Table 5 (complex functions, XOR-shared inputs).
#[derive(Clone, Copy, Debug)]
pub struct Table5Row {
    /// Function name.
    pub name: &'static str,
    /// Conventional GC on the processor.
    pub without: u128,
    /// With SkipGate.
    pub with: u64,
}

/// Table 5 of the paper.
pub const TABLE5: &[Table5Row] = &[
    Table5Row {
        name: "Bubble-Sort32 32",
        without: 1_366_390_620,
        with: 65_472,
    },
    Table5Row {
        name: "Merge-Sort32 32",
        without: 981_712_458,
        with: 540_645,
    },
    Table5Row {
        name: "Dijkstra64 32",
        without: 1_493_339_886,
        with: 59_282,
    },
    Table5Row {
        name: "CORDIC 32",
        without: 228_847_596,
        with: 4_601,
    },
];

/// §5.3's garbled-MIPS comparison: Hamming over 32 32-bit integers.
pub const GARBLED_MIPS_HAMMING_32X32: u64 = 481_000;
/// ARM2GC's figure for the same computation.
pub const ARM2GC_HAMMING_32X32: u64 = 3_073;
