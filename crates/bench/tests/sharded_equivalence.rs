//! Sharding is transport-only: splitting the table stream across
//! sub-channels must not change *anything* the protocol computes — not
//! the decoded outputs (checked inside the runners against the
//! semantic expectation) and not a single cost counter.
//!
//! Every seed Table 1 benchmark circuit is run at shard counts 2 and 4
//! and compared field-for-field against the unsharded run.

use arm2gc_bench::runner::{
    run_baseline_sharded, run_baseline_with, run_skipgate_with, table1_circuits,
};
use arm2gc_core::{OtBackend, ShardConfig, StreamConfig, TwoPartyConfig};

#[test]
fn skipgate_sharding_preserves_outputs_and_stats() {
    for bc in &table1_circuits(true) {
        let name = bc.circuit.name().to_string();
        // `run_skipgate_with` asserts both parties' outputs match the
        // semantic expectation, so output equivalence is checked inside
        // every run below; here we pin the stats.
        let unsharded = run_skipgate_with(bc, TwoPartyConfig::default());
        for shards in [2, 4] {
            let sharded =
                run_skipgate_with(bc, TwoPartyConfig::new().shards(ShardConfig::new(shards)));
            assert_eq!(
                unsharded, sharded,
                "{name}: skipgate stats at {shards} shards"
            );
        }
    }
}

#[test]
fn baseline_sharding_preserves_outputs_and_stats() {
    for bc in &table1_circuits(true) {
        let name = bc.circuit.name().to_string();
        let unsharded = run_baseline_with(bc, OtBackend::Insecure, StreamConfig::default());
        for shards in [2, 4] {
            let sharded = run_baseline_sharded(
                bc,
                OtBackend::Insecure,
                StreamConfig::default(),
                ShardConfig::new(shards),
            );
            assert_eq!(
                unsharded, sharded,
                "{name}: baseline stats at {shards} shards"
            );
        }
    }
}

/// Sharding composes with the rest of the session configuration:
/// lockstep streaming and the real OT stack behave identically sharded.
#[test]
fn sharding_composes_with_streaming_and_ot_backends() {
    let circuits = table1_circuits(true);
    for bc in &circuits[..3] {
        let name = bc.circuit.name().to_string();
        let base = run_skipgate_with(bc, TwoPartyConfig::new().stream(StreamConfig::lockstep()));
        let sharded = run_skipgate_with(
            bc,
            TwoPartyConfig::new()
                .stream(StreamConfig::lockstep())
                .shards(ShardConfig::new(3)),
        );
        assert_eq!(base, sharded, "{name}: lockstep sharding");
    }
    let bc = &circuits[2]; // compare_32: small enough for real OT
    let base = run_skipgate_with(bc, TwoPartyConfig::new().ot(OtBackend::NaorPinkasIknp));
    let sharded = run_skipgate_with(
        bc,
        TwoPartyConfig::new()
            .ot(OtBackend::NaorPinkasIknp)
            .shards(ShardConfig::new(2)),
    );
    assert_eq!(base, sharded, "sharding with the Naor-Pinkas + IKNP stack");
}
