//! Cost-stat regression guard: the session/streaming refactor (and any
//! future transport change) must not alter the paper's cost metrics.
//!
//! The expected values below were captured from the pre-session-layer
//! engines on every seed Table 1 benchmark circuit; table counts,
//! `table_bytes`, OT counts and cycle counts must stay *exactly* these,
//! whatever the framing, chunking or OT backend underneath.

use arm2gc_bench::runner::{run_baseline_with, run_skipgate_with, table1_circuits};
use arm2gc_core::{OtBackend, StreamConfig, TwoPartyConfig};

/// (name, tables, table_bytes, ots, cycles, skipped, public, pass, free_xor)
#[allow(clippy::type_complexity)]
const SKIPGATE_EXPECTED: &[(&str, u64, u64, u64, usize, u64, u64, u64, u64)] = &[
    ("sum_32", 31, 992, 32, 32, 1, 0, 3, 123),
    ("sum_1024", 1023, 32736, 1024, 1024, 1, 0, 3, 4091),
    ("compare_32", 32, 1024, 32, 32, 0, 0, 36, 93),
    (
        "compare_16384",
        16384,
        524288,
        16384,
        16384,
        0,
        0,
        16388,
        49149,
    ),
    ("hamming_32", 145, 4640, 32, 32, 0, 30, 6, 203),
    ("hamming_160", 1092, 34944, 160, 160, 0, 56, 8, 1404),
    ("hamming_512", 4563, 146016, 512, 512, 0, 90, 10, 5577),
    ("mult_32", 2016, 64512, 32, 1, 0, 0, 95, 3873),
    ("matmul_3x3_32", 27369, 875808, 288, 1, 855, 0, 2511, 51651),
    (
        "sha3_256", 37056, 1185792, 0, 24, 1344, 16224, 38592, 112576,
    ),
    ("aes_128", 7200, 230400, 128, 10, 0, 6224, 9244, 31440),
];

/// (name, tables, table_bytes, ots, cycles)
const BASELINE_EXPECTED: &[(&str, u64, u64, u64, usize)] = &[
    ("sum_32", 32, 1024, 32, 32),
    ("sum_1024", 1024, 32768, 1024, 1024),
    ("compare_32", 32, 1024, 32, 32),
    ("compare_16384", 16384, 524288, 16384, 16384),
    ("hamming_32", 160, 5120, 32, 32),
    ("hamming_160", 1120, 35840, 160, 160),
    ("hamming_512", 4608, 147456, 512, 512),
    ("mult_32", 2016, 64512, 32, 1),
    ("matmul_3x3_32", 28224, 903168, 288, 1),
    ("sha3_256", 43728, 1399296, 0, 24),
    ("aes_128", 11060, 353920, 128, 10),
];

#[test]
fn skipgate_stats_match_pre_refactor_values() {
    for bc in &table1_circuits(true) {
        let name = bc.circuit.name();
        let row = SKIPGATE_EXPECTED
            .iter()
            .find(|r| r.0 == name)
            .unwrap_or_else(|| panic!("no expected row for {name}"));
        let s = run_skipgate_with(bc, TwoPartyConfig::default());
        assert_eq!(s.garbled_tables, row.1, "{name}: garbled_tables");
        assert_eq!(s.table_bytes, row.2, "{name}: table_bytes");
        assert_eq!(s.ots, row.3, "{name}: ots");
        assert_eq!(s.cycles_run, row.4, "{name}: cycles_run");
        assert_eq!(s.skipped_nonlinear, row.5, "{name}: skipped_nonlinear");
        assert_eq!(s.public_gates, row.6, "{name}: public_gates");
        assert_eq!(s.pass_gates, row.7, "{name}: pass_gates");
        assert_eq!(s.free_xor, row.8, "{name}: free_xor");
    }
}

#[test]
fn baseline_stats_match_pre_refactor_values() {
    for bc in &table1_circuits(true) {
        let name = bc.circuit.name();
        let row = BASELINE_EXPECTED
            .iter()
            .find(|r| r.0 == name)
            .unwrap_or_else(|| panic!("no expected row for {name}"));
        let s = run_baseline_with(bc, OtBackend::Insecure, StreamConfig::default());
        assert_eq!(s.garbled_tables, row.1, "{name}: garbled_tables");
        assert_eq!(s.table_bytes, row.2, "{name}: table_bytes");
        assert_eq!(s.ots, row.3, "{name}: ots");
        assert_eq!(s.cycles_run, row.4, "{name}: cycles_run");
    }
}

/// Chunking is transport-only: lockstep and chunked flushing must yield
/// byte-identical cost stats.
#[test]
fn stream_chunking_does_not_change_stats() {
    for bc in &table1_circuits(true)[..5] {
        let name = bc.circuit.name().to_string();
        let lockstep = run_baseline_with(bc, OtBackend::Insecure, StreamConfig::lockstep());
        let chunked = run_baseline_with(bc, OtBackend::Insecure, StreamConfig::chunked(1024));
        let default = run_baseline_with(bc, OtBackend::Insecure, StreamConfig::default());
        assert_eq!(lockstep, chunked, "{name}: lockstep vs chunked");
        assert_eq!(lockstep, default, "{name}: lockstep vs default");

        let skip_lockstep =
            run_skipgate_with(bc, TwoPartyConfig::new().stream(StreamConfig::lockstep()));
        let skip_chunked = run_skipgate_with(
            bc,
            TwoPartyConfig::new().stream(StreamConfig::chunked(1024)),
        );
        assert_eq!(skip_lockstep, skip_chunked, "{name}: skipgate streaming");
    }
}
