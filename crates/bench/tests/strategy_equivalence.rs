//! Cross-engine differential harness: every execution strategy must be
//! *indistinguishable on the wire*.
//!
//! The engines can walk a cycle in netlist order (wavefront batching)
//! or execute a precomputed topological layer schedule
//! ([`ScheduleMode::Layered`]), over any shard count. All of it is
//! transport/compute-only: outputs, every cost counter and the exact
//! bytes of the garbler's table stream must match the netlist-order
//! unsharded run — on every pinned Table 1 circuit and on
//! proptest-random circuits.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use arm2gc_bench::runner::{
    run_baseline_outcome, run_skipgate_instanced_outcome, run_skipgate_outcome, run_skipgate_with,
    table1_circuits,
};
use arm2gc_circuit::random::{random_circuit, random_inputs, RandomCircuitParams, TestRng};
use arm2gc_circuit::sim::{PartyData, Simulator};
use arm2gc_circuit::{Circuit, CircuitBuilder, OutputMode, Role, ScheduleMode};
use arm2gc_comm::{duplex, Channel, ChannelError};
use arm2gc_core::{
    run_skipgate_evaluator_instanced, run_skipgate_evaluator_scheduled,
    run_skipgate_garbler_instanced, run_skipgate_garbler_scheduled, run_two_party_cfg,
    run_two_party_instanced_cfg, shard_duplexes, OtBackend, OtConfig, ShardConfig, SkipGateOptions,
    StreamConfig, TwoPartyConfig,
};
use arm2gc_crypto::Prg;

const MODES: [ScheduleMode; 2] = [ScheduleMode::Netlist, ScheduleMode::Layered];
const SHARDS: [usize; 3] = [1, 2, 4];

fn cfg(mode: ScheduleMode, shards: usize) -> TwoPartyConfig {
    TwoPartyConfig::new()
        .schedule(mode)
        .shards(ShardConfig::new(shards))
}

/// SkipGate: all strategies agree with the netlist-order unsharded run
/// on every cost counter (outputs are checked against the semantic
/// expectation inside every run).
#[test]
fn skipgate_strategies_agree_on_table1() {
    for bc in &table1_circuits(true) {
        let name = bc.circuit.name().to_string();
        let baseline = run_skipgate_with(bc, cfg(ScheduleMode::Netlist, 1));
        for mode in MODES {
            for shards in SHARDS {
                let got = run_skipgate_with(bc, cfg(mode, shards));
                assert_eq!(baseline, got, "{name}: skipgate {mode:?} x {shards} shards");
            }
        }
    }
}

/// Classic baseline engine: same invariant.
#[test]
fn baseline_strategies_agree_on_table1() {
    for bc in &table1_circuits(true) {
        let name = bc.circuit.name().to_string();
        let reference = run_baseline_outcome(
            bc,
            OtBackend::Insecure,
            StreamConfig::default(),
            ShardConfig::single(),
            ScheduleMode::Netlist,
        );
        for mode in MODES {
            for shards in SHARDS {
                let got = run_baseline_outcome(
                    bc,
                    OtBackend::Insecure,
                    StreamConfig::default(),
                    ShardConfig::new(shards),
                    mode,
                );
                assert_eq!(
                    reference.stats, got.stats,
                    "{name}: baseline {mode:?} x {shards} shards"
                );
                assert_eq!(reference.outputs, got.outputs, "{name}: outputs");
            }
        }
    }
}

/// A [`Channel`] wrapper recording every frame sent through it, so the
/// garbler's exact wire transcript can be compared across strategies.
struct Recording<C> {
    inner: C,
    sent: Arc<Mutex<Vec<Vec<u8>>>>,
}

impl<C> Recording<C> {
    fn new(inner: C) -> (Self, Arc<Mutex<Vec<Vec<u8>>>>) {
        let sent = Arc::new(Mutex::new(Vec::new()));
        (
            Self {
                inner,
                sent: Arc::clone(&sent),
            },
            sent,
        )
    }
}

impl<C: Channel> Channel for Recording<C> {
    fn send(&mut self, data: &[u8]) -> Result<(), ChannelError> {
        self.sent
            .lock()
            .expect("transcript lock")
            .push(data.to_vec());
        self.inner.send(data)
    }

    fn recv(&mut self) -> Result<Vec<u8>, ChannelError> {
        self.inner.recv()
    }
}

/// Runs the SkipGate protocol with deterministic PRG seeds and records
/// the garbler's transcript: the frames of the main channel plus each
/// shard sub-channel. Returns `(outputs, per-channel transcripts)`.
#[allow(clippy::type_complexity)]
fn skipgate_transcript(
    circuit: &Circuit,
    alice: &PartyData,
    bob: &PartyData,
    public: &PartyData,
    cycles: usize,
    mode: ScheduleMode,
    shards: usize,
) -> (Vec<Vec<bool>>, Vec<Vec<Vec<u8>>>) {
    let shards = ShardConfig::new(shards);
    let (ca, mut cb) = duplex();
    let (mut ca, main_rec) = Recording::new(ca);
    let (g_shards, e_shards) = shard_duplexes(shards);
    let mut recorders = vec![main_rec];
    let g_shards: Vec<Box<dyn Channel>> = g_shards
        .into_iter()
        .map(|ch| {
            let (rec, log) = Recording::new(ch);
            recorders.push(log);
            Box::new(rec) as Box<dyn Channel>
        })
        .collect();

    let outputs = crossbeam::thread::scope(|s| {
        let garbler = s.spawn(move |_| {
            let mut prg = Prg::from_seed([71; 16]);
            let mut ot = OtBackend::Insecure.sender(OtConfig::TEST, &mut prg);
            run_skipgate_garbler_scheduled(
                circuit,
                alice,
                public,
                cycles,
                &mut ca,
                g_shards,
                ot.as_mut(),
                &mut prg,
                SkipGateOptions::default(),
                StreamConfig::default(),
                shards,
                mode,
            )
            .expect("garbler")
        });
        let mut prg = Prg::from_seed([72; 16]);
        let mut ot = OtBackend::Insecure.receiver(OtConfig::TEST, &mut prg);
        let bob_out = run_skipgate_evaluator_scheduled(
            circuit,
            bob,
            public,
            cycles,
            &mut cb,
            e_shards,
            ot.as_mut(),
            SkipGateOptions::default(),
            shards,
            mode,
        )
        .expect("evaluator");
        let alice_out = garbler.join().expect("garbler thread");
        assert_eq!(alice_out.outputs, bob_out.outputs);
        alice_out.outputs
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e));

    let transcripts = recorders
        .iter()
        .map(|r| r.lock().expect("transcript lock").clone())
        .collect();
    (outputs, transcripts)
}

/// The headline guarantee: the layer-scheduled garbler emits the
/// byte-identical frame sequence on every channel — main and shard
/// sub-channels — as the netlist-order walk, at 1 and 2 shards, with
/// identical PRG seeds.
#[test]
fn layered_transcript_is_byte_identical() {
    let circuits = table1_circuits(true);
    // The seven cheap circuits, plus aes_128 — the circuit whose every
    // cycle re-levels, so the byte-identity guarantee covers patched
    // schedules too.
    let aes = circuits.iter().filter(|bc| bc.circuit.name() == "aes_128");
    for bc in circuits[..7].iter().chain(aes) {
        let name = bc.circuit.name().to_string();
        for shards in [1usize, 2] {
            let (out_n, tx_n) = skipgate_transcript(
                &bc.circuit,
                &bc.alice,
                &bc.bob,
                &bc.public,
                bc.cycles,
                ScheduleMode::Netlist,
                shards,
            );
            let (out_l, tx_l) = skipgate_transcript(
                &bc.circuit,
                &bc.alice,
                &bc.bob,
                &bc.public,
                bc.cycles,
                ScheduleMode::Layered,
                shards,
            );
            assert_eq!(out_n, out_l, "{name}: outputs at {shards} shards");
            assert_eq!(
                tx_n.len(),
                tx_l.len(),
                "{name}: channel count at {shards} shards"
            );
            for (ch, (n, l)) in tx_n.iter().zip(&tx_l).enumerate() {
                assert_eq!(
                    n, l,
                    "{name}: channel {ch} transcript differs at {shards} shards"
                );
            }
        }
    }
}

/// Builds a circuit engineered to make the SkipGate decision pass emit
/// `Alias` edges that *cross* static schedule levels — the case that
/// used to force whole-cycle fallback to the netlist walk.
///
/// Per gadget: a garbled AND chain produces a deep wire `t`; the XOR
/// ladder `z = (t ⊕ a ⊕ b) ⊕ t` cancels `t` out of the lineage, so `z`
/// (living at a deep level) becomes the representative for `a ⊕ b`.
/// A later plain `m = a ⊕ b` (static level 0) then aliases to `z` —
/// an edge from level 0 into a deep wire — and the AND consuming `m`
/// is dragged along transitively. Two patched gates per gadget.
fn alias_cross_circuit(gadgets: usize, depth: usize, mode: OutputMode) -> Circuit {
    let mut b = CircuitBuilder::new("alias_cross");
    b.set_output_mode(mode);
    let mut outs = Vec::new();
    for _ in 0..gadgets {
        let a = b.input(Role::Alice);
        let bb = b.input(Role::Bob);
        let p = b.input(Role::Alice);
        let q = b.input(Role::Bob);
        let mut t = b.and(p, q);
        for _ in 0..depth {
            t = b.and(t, q);
        }
        let x = b.xor(t, a);
        let y = b.xor(x, bb);
        let z = b.xor(y, t); // lineage a ⊕ b at a deep level
        let keep_z = b.and(z, p);
        let m = b.xor(a, bb); // Alias { src: z } — crosses levels
        let w = b.and(m, q); // transitively re-leveled consumer
        outs.push(keep_z);
        outs.push(w);
    }
    b.outputs(&outs);
    b.build()
}

/// Alias-heavy circuits whose alias edges cross static levels: layered
/// runs must re-level (never fall back), agree with the simulator and
/// the netlist walk on outputs and every cost counter, and emit the
/// byte-identical transcript at every shard count.
#[test]
fn releveled_cycles_are_wire_identical_on_alias_crossing_circuits() {
    let gadgets = 3usize;
    for (cycles, mode) in [(1usize, OutputMode::FinalOnly), (3, OutputMode::PerCycle)] {
        let c = alias_cross_circuit(gadgets, 2, mode);
        let mut rng = TestRng::new(4242 + cycles as u64);
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let sim = Simulator::new(&c).run(&a, &b, &p, cycles);
        let (ref_a, ref_b) =
            run_two_party_cfg(&c, &a, &b, &p, cycles, cfg(ScheduleMode::Netlist, 1));
        assert_eq!(ref_a.outputs, sim.outputs, "netlist outputs vs simulator");
        assert_eq!(
            ref_a.batching.releveled_cycles, 0,
            "netlist mode never re-levels"
        );
        for shards in SHARDS {
            let (ga, gb) =
                run_two_party_cfg(&c, &a, &b, &p, cycles, cfg(ScheduleMode::Layered, shards));
            assert_eq!(
                ga.outputs, sim.outputs,
                "layered outputs at {shards} shards"
            );
            assert_eq!(gb.outputs, sim.outputs);
            assert_eq!(ga.stats, ref_a.stats, "cost counters at {shards} shards");
            assert_eq!(gb.stats, ref_b.stats);
            assert_eq!(
                ga.batching, gb.batching,
                "parties agree on re-leveling stats"
            );
            assert_eq!(ga.batching.fallback_cycles, 0, "re-leveling, not fallback");
            assert_eq!(
                ga.batching.releveled_cycles, cycles as u64,
                "every cycle carries a crossing alias"
            );
            assert_eq!(
                ga.batching.patched_gates,
                (2 * gadgets * cycles) as u64,
                "alias + its consumer move, per gadget per cycle"
            );
        }
        // The headline wire guarantee, now covering re-leveled cycles.
        for shards in SHARDS {
            let (out_n, tx_n) =
                skipgate_transcript(&c, &a, &b, &p, cycles, ScheduleMode::Netlist, shards);
            let (out_l, tx_l) =
                skipgate_transcript(&c, &a, &b, &p, cycles, ScheduleMode::Layered, shards);
            assert_eq!(out_n, out_l);
            assert_eq!(out_n, sim.outputs);
            assert_eq!(tx_n, tx_l, "transcripts at {shards} shards");
        }
    }
}

/// The fix this harness exists to pin: aes_128 used to fall back on
/// all 10 cycles (610 netlist-shaped batches); re-leveling must keep
/// it layered with strictly better occupancy and zero fallbacks.
#[test]
fn aes128_relevels_instead_of_falling_back() {
    let circuits = table1_circuits(true);
    let bc = circuits
        .iter()
        .find(|bc| bc.circuit.name() == "aes_128")
        .expect("aes_128 in the Table 1 quick set");
    let netlist = run_skipgate_outcome(bc, cfg(ScheduleMode::Netlist, 1)).batching;
    let layered = run_skipgate_outcome(bc, cfg(ScheduleMode::Layered, 1)).batching;
    assert_eq!(layered.fallback_cycles, 0, "no cycle falls back any more");
    assert_eq!(
        layered.releveled_cycles, bc.cycles as u64,
        "every aes cycle carries a crossing alias and re-levels"
    );
    assert!(layered.patched_gates > 0);
    assert_eq!(netlist.releveled_cycles, 0);
    assert_eq!(netlist.fallback_cycles, 0);
    assert_eq!(layered.batched_gates, netlist.batched_gates);
    assert!(
        layered.batches < 610,
        "pre-fix fallback shape was 610 batches, got {}",
        layered.batches
    );
    assert!(
        layered.batches < netlist.batches,
        "layered {} vs netlist {} batches",
        layered.batches,
        netlist.batches
    );
    assert!(
        layered.mean_batch() > netlist.mean_batch(),
        "layered occupancy {:.2} not above wavefront {:.2}",
        layered.mean_batch(),
        netlist.mean_batch()
    );
}

/// An all-public circuit: SkipGate resolves every gate locally, so the
/// run forms zero batches — occupancy reporting must stay clean (0.0,
/// never NaN/garbage) end to end.
#[test]
fn all_public_run_reports_zero_batches_cleanly() {
    let mut b = CircuitBuilder::new("all_public");
    let xs = b.inputs(Role::Public, 4);
    let a0 = b.and(xs[0], xs[1]);
    let a1 = b.xor(xs[2], xs[3]);
    let a2 = b.and(a0, a1);
    b.outputs(&[a0, a1, a2]);
    let c = b.build();
    let mut rng = TestRng::new(7);
    let (a, bo, p) = random_inputs(&mut rng, &c, 1);
    let sim = Simulator::new(&c).run(&a, &bo, &p, 1);
    for mode in MODES {
        let (ga, gb) = run_two_party_cfg(&c, &a, &bo, &p, 1, cfg(mode, 1));
        assert_eq!(ga.outputs, sim.outputs, "{mode:?}");
        assert_eq!(gb.outputs, sim.outputs);
        assert_eq!(ga.stats.garbled_tables, 0);
        assert_eq!(ga.batching.batches, 0, "{mode:?}: nothing to batch");
        assert_eq!(ga.batching.batched_gates, 0);
        assert_eq!(ga.batching.mean_batch(), 0.0);
        assert!(!ga.batching.mean_batch().is_nan());
        assert_eq!(gb.batching.batches, 0);
        assert_eq!(gb.batching.mean_batch(), 0.0);
    }
}

/// Mixed-mode runs work: the schedule is a per-party compute detail, so
/// a layered garbler interoperates with a netlist evaluator (and the
/// transcript matches the all-netlist one).
#[test]
fn mixed_modes_interoperate() {
    let bc = &table1_circuits(true)[4]; // hamming_32: pass + garble mix
    let shards = ShardConfig::single();
    let (ca, mut cb) = duplex();
    let (mut ca, rec) = Recording::new(ca);
    let outputs = crossbeam::thread::scope(|s| {
        let garbler = s.spawn(move |_| {
            let mut prg = Prg::from_seed([71; 16]);
            let mut ot = OtBackend::Insecure.sender(OtConfig::TEST, &mut prg);
            run_skipgate_garbler_scheduled(
                &bc.circuit,
                &bc.alice,
                &bc.public,
                bc.cycles,
                &mut ca,
                Vec::new(),
                ot.as_mut(),
                &mut prg,
                SkipGateOptions::default(),
                StreamConfig::default(),
                shards,
                ScheduleMode::Layered,
            )
            .expect("garbler")
        });
        let mut prg = Prg::from_seed([72; 16]);
        let mut ot = OtBackend::Insecure.receiver(OtConfig::TEST, &mut prg);
        let bob_out = run_skipgate_evaluator_scheduled(
            &bc.circuit,
            &bc.bob,
            &bc.public,
            bc.cycles,
            &mut cb,
            Vec::new(),
            ot.as_mut(),
            SkipGateOptions::default(),
            shards,
            ScheduleMode::Netlist,
        )
        .expect("evaluator");
        let alice_out = garbler.join().expect("garbler thread");
        assert_eq!(alice_out.outputs, bob_out.outputs);
        alice_out.outputs
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e));
    let got: Vec<bool> = outputs.concat();
    assert_eq!(got, bc.expected, "mixed-mode output");

    // And the layered garbler's transcript equals the all-netlist one.
    let (_, tx_netlist) = skipgate_transcript(
        &bc.circuit,
        &bc.alice,
        &bc.bob,
        &bc.public,
        bc.cycles,
        ScheduleMode::Netlist,
        1,
    );
    assert_eq!(*rec.lock().expect("lock"), tx_netlist[0]);
}

/// Layered batching is never worse than a cycle-per-batch floor, and on
/// the chain-heavy Table 1 circuits it forms *wider* batches than the
/// netlist-order wavefront — the whole point of the schedule.
#[test]
fn layered_beats_wavefront_on_chain_heavy_circuits() {
    // mult_32 (shift-add chains) and matmul_3x3_32 interleave long
    // dependency chains in netlist order; the wavefront keeps breaking
    // at chain boundaries while the level schedule regroups them.
    let circuits = table1_circuits(true);
    for wanted in ["mult_32", "matmul_3x3_32"] {
        let bc = circuits
            .iter()
            .find(|bc| bc.circuit.name() == wanted)
            .unwrap_or_else(|| panic!("{wanted} missing from the Table 1 quick set"));
        let name = bc.circuit.name().to_string();
        let netlist = run_skipgate_outcome(bc, cfg(ScheduleMode::Netlist, 1)).batching;
        let layered = run_skipgate_outcome(bc, cfg(ScheduleMode::Layered, 1)).batching;
        assert_eq!(
            netlist.batched_gates, layered.batched_gates,
            "{name}: same gates hashed"
        );
        assert!(layered.levels > 0, "{name}: layered run reports levels");
        assert!(
            layered.largest_batch >= netlist.largest_batch,
            "{name}: layered largest batch {} < wavefront {}",
            layered.largest_batch,
            netlist.largest_batch
        );
        assert!(
            layered.mean_batch() > netlist.mean_batch(),
            "{name}: layered mean batch {:.2} not above wavefront {:.2}",
            layered.mean_batch(),
            netlist.mean_batch()
        );
    }
}

/// Instanced runs on the Table 1 circuits: every lane's outputs and
/// cost counters must equal a sequential run on the same inputs, under
/// every sequential reference mode and at every shard count.
#[test]
fn instanced_lanes_match_sequential_on_table1() {
    const N: usize = 2;
    for bc in &table1_circuits(true) {
        let name = bc.circuit.name().to_string();
        for mode in MODES {
            let seq = run_skipgate_outcome(bc, cfg(mode, 1));
            for shards in SHARDS {
                let inst = run_skipgate_instanced_outcome(bc, cfg(mode, shards), N);
                assert_eq!(inst.lanes.len(), N);
                assert_eq!(
                    inst.batching.instances, N as u64,
                    "{name}: instanced stats carry the lane count"
                );
                for (lane, got) in inst.lanes.iter().enumerate() {
                    assert_eq!(
                        got.outputs, seq.outputs,
                        "{name}: lane {lane} outputs vs sequential {mode:?} x {shards} shards"
                    );
                    assert_eq!(
                        got.stats, seq.stats,
                        "{name}: lane {lane} stats vs sequential {mode:?} x {shards} shards"
                    );
                }
                // Identical lanes share every decision, so the whole
                // session hashes exactly one lane's gates N times.
                assert_eq!(
                    inst.batching.batched_gates,
                    seq.batching.batched_gates * N as u64,
                    "{name}: instanced hashes N lanes' gates"
                );
            }
        }
    }
}

/// The instanced tentpole's amortization claim, pinned on the ISSUE's
/// acceptance circuit: at N=8, matmul_3x3's session-wide mean batch
/// must be at least 5x the single-instance layered width (and the
/// per-instance amortized width must stay at least the N=1 width).
#[test]
fn instanced_matmul_batches_at_least_5x_wider() {
    let circuits = table1_circuits(true);
    let bc = circuits
        .iter()
        .find(|bc| bc.circuit.name() == "matmul_3x3_32")
        .expect("matmul_3x3_32 in the Table 1 quick set");
    let single = run_skipgate_outcome(bc, cfg(ScheduleMode::Layered, 1)).batching;
    let inst = run_skipgate_instanced_outcome(bc, TwoPartyConfig::default(), 8).batching;
    assert!(
        inst.mean_batch() >= 5.0 * single.mean_batch(),
        "instanced N=8 mean batch {:.1} not 5x the single-instance {:.1}",
        inst.mean_batch(),
        single.mean_batch()
    );
    assert!(
        inst.mean_batch_per_instance() >= single.mean_batch(),
        "amortized width {:.1} fell below the N=1 width {:.1}",
        inst.mean_batch_per_instance(),
        single.mean_batch()
    );
}

/// Runs the instanced protocol with the same deterministic PRG seeds as
/// [`skipgate_transcript`], recording the garbler's per-channel frames.
#[allow(clippy::type_complexity)]
fn instanced_transcript(
    circuit: &Circuit,
    alices: &[PartyData],
    bobs: &[PartyData],
    publics: &[PartyData],
    cycles: usize,
    shards: usize,
) -> (Vec<Vec<Vec<bool>>>, Vec<Vec<Vec<u8>>>) {
    let shards = ShardConfig::new(shards);
    let (ca, mut cb) = duplex();
    let (mut ca, main_rec) = Recording::new(ca);
    let (g_shards, e_shards) = shard_duplexes(shards);
    let mut recorders = vec![main_rec];
    let g_shards: Vec<Box<dyn Channel>> = g_shards
        .into_iter()
        .map(|ch| {
            let (rec, log) = Recording::new(ch);
            recorders.push(log);
            Box::new(rec) as Box<dyn Channel>
        })
        .collect();

    let outputs = crossbeam::thread::scope(|s| {
        let garbler = s.spawn(move |_| {
            let mut prg = Prg::from_seed([71; 16]);
            let mut ot = OtBackend::Insecure.sender(OtConfig::TEST, &mut prg);
            run_skipgate_garbler_instanced(
                circuit,
                alices,
                publics,
                cycles,
                &mut ca,
                g_shards,
                ot.as_mut(),
                &mut prg,
                SkipGateOptions::default(),
                StreamConfig::default(),
                shards,
            )
            .expect("instanced garbler")
        });
        let mut prg = Prg::from_seed([72; 16]);
        let mut ot = OtBackend::Insecure.receiver(OtConfig::TEST, &mut prg);
        let bob_out = run_skipgate_evaluator_instanced(
            circuit,
            bobs,
            publics,
            cycles,
            &mut cb,
            e_shards,
            ot.as_mut(),
            SkipGateOptions::default(),
            shards,
        )
        .expect("instanced evaluator");
        let alice_out = garbler.join().expect("garbler thread");
        alice_out
            .lanes
            .iter()
            .zip(&bob_out.lanes)
            .for_each(|(a, b)| assert_eq!(a.outputs, b.outputs));
        alice_out
            .lanes
            .into_iter()
            .map(|l| l.outputs)
            .collect::<Vec<_>>()
    })
    .unwrap_or_else(|e| std::panic::resume_unwind(e));

    let transcripts = recorders
        .iter()
        .map(|r| r.lock().expect("transcript lock").clone())
        .collect();
    (outputs, transcripts)
}

/// The N=1 pin: a one-lane instanced session announces nothing extra
/// and emits the byte-identical frame sequence — on the main channel
/// and every shard sub-channel — as today's layered scheduled run with
/// the same PRG seeds.
#[test]
fn single_lane_instanced_transcript_is_byte_identical() {
    let circuits = table1_circuits(true);
    let aes = circuits.iter().filter(|bc| bc.circuit.name() == "aes_128");
    for bc in circuits[..7].iter().chain(aes) {
        let name = bc.circuit.name().to_string();
        for shards in [1usize, 2] {
            let (out_seq, tx_seq) = skipgate_transcript(
                &bc.circuit,
                &bc.alice,
                &bc.bob,
                &bc.public,
                bc.cycles,
                ScheduleMode::Layered,
                shards,
            );
            let (out_inst, tx_inst) = instanced_transcript(
                &bc.circuit,
                std::slice::from_ref(&bc.alice),
                std::slice::from_ref(&bc.bob),
                std::slice::from_ref(&bc.public),
                bc.cycles,
                shards,
            );
            assert_eq!(
                out_inst,
                vec![out_seq],
                "{name}: outputs at {shards} shards"
            );
            assert_eq!(
                tx_seq, tx_inst,
                "{name}: N=1 instanced transcript differs at {shards} shards"
            );
        }
    }
}

fn proptest_cases(default_cases: u32) -> ProptestConfig {
    if std::env::var_os("PROPTEST_CASES").is_some() {
        ProptestConfig::default()
    } else {
        ProptestConfig::with_cases(default_cases)
    }
}

proptest! {
    #![proptest_config(proptest_cases(48))]

    /// Random sequential circuits: every strategy x shard combination
    /// matches the cleartext simulator and the netlist-order stats.
    #[test]
    fn strategies_agree_on_random_circuits(seed in 1u64..5000, cycles in 1usize..5, shards in 1usize..4) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (2, 2, 2),
            dffs: 3,
            gates: 40,
            outputs: 4,
            output_mode: if seed % 2 == 0 { OutputMode::PerCycle } else { OutputMode::FinalOnly },
        };
        let c = random_circuit(&mut rng, params);
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let sim = Simulator::new(&c).run(&a, &b, &p, cycles);
        let (ref_a, _) = run_two_party_cfg(&c, &a, &b, &p, cycles, cfg(ScheduleMode::Netlist, 1));
        prop_assert_eq!(&ref_a.outputs, &sim.outputs);
        for mode in MODES {
            let (ga, gb) = run_two_party_cfg(&c, &a, &b, &p, cycles, cfg(mode, shards));
            prop_assert_eq!(&ga.outputs, &sim.outputs);
            prop_assert_eq!(&gb.outputs, &sim.outputs);
            prop_assert_eq!(ga.stats, ref_a.stats);
            prop_assert_eq!(ga.batching.batched_gates, ref_a.batching.batched_gates);
            // Re-leveling replaced the fallback entirely, and both
            // parties must derive the identical patch schedule.
            prop_assert_eq!(ga.batching.fallback_cycles, 0);
            prop_assert_eq!(ga.batching, gb.batching);
            if matches!(mode, ScheduleMode::Netlist) {
                prop_assert_eq!(ga.batching.releveled_cycles, 0);
            }
        }
    }

    /// Random circuits with *different* inputs per lane — public inputs
    /// included, so the per-lane decision vectors diverge and the
    /// per-lane re-leveling path is exercised. Every lane must equal
    /// its own sequential run (simulator outputs + full cost counters).
    #[test]
    fn instanced_diverging_lanes_match_sequential(seed in 1u64..5000, cycles in 1usize..4, shards in 1usize..4) {
        const N: usize = 3;
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (2, 2, 2),
            dffs: 3,
            gates: 40,
            outputs: 4,
            output_mode: if seed % 2 == 0 { OutputMode::PerCycle } else { OutputMode::FinalOnly },
        };
        let c = random_circuit(&mut rng, params);
        let lanes: Vec<(PartyData, PartyData, PartyData)> =
            (0..N).map(|_| random_inputs(&mut rng, &c, cycles)).collect();
        let alices: Vec<PartyData> = lanes.iter().map(|l| l.0.clone()).collect();
        let bobs: Vec<PartyData> = lanes.iter().map(|l| l.1.clone()).collect();
        let publics: Vec<PartyData> = lanes.iter().map(|l| l.2.clone()).collect();
        let (ia, ib) = run_two_party_instanced_cfg(
            &c, &alices, &bobs, &publics, cycles, cfg(ScheduleMode::Layered, shards),
        );
        prop_assert_eq!(ia.batching, ib.batching);
        prop_assert_eq!(ia.batching.instances, N as u64);
        prop_assert_eq!(ia.batching.fallback_cycles, 0);
        for (lane, (a, b, p)) in lanes.iter().enumerate() {
            let sim = Simulator::new(&c).run(a, b, p, cycles);
            let (sa, _) = run_two_party_cfg(&c, a, b, p, cycles, cfg(ScheduleMode::Layered, 1));
            prop_assert_eq!(&sa.outputs, &sim.outputs);
            prop_assert_eq!(&ia.lanes[lane].outputs, &sim.outputs, "lane {} outputs", lane);
            prop_assert_eq!(&ib.lanes[lane].outputs, &sim.outputs);
            prop_assert_eq!(ia.lanes[lane].stats, sa.stats, "lane {} stats", lane);
        }
    }
}

/// Slow tier: a pathological all-chain circuit — every AND feeds the
/// next — must degrade to batch width 1 under the layer schedule (and
/// still match the netlist transcript), while a maximally wide circuit
/// must reach a batch of level size. `cargo test -- --ignored`.
#[test]
#[ignore = "slow tier: deep pathological schedules"]
fn deep_chain_and_wide_parallel_extremes() {
    const N: usize = 2000;

    // All-chain: c_0 = a_0 & b_0; c_i = c_{i-1} & b_i.
    let mut b = CircuitBuilder::new("deep_chain");
    let xs = b.inputs(Role::Alice, 1);
    let ys = b.inputs(Role::Bob, N);
    let mut acc = b.and(xs[0], ys[0]);
    for &y in &ys[1..] {
        acc = b.and(acc, y);
    }
    b.output(acc);
    let chain = b.build();

    let alice = PartyData::from_stream(vec![vec![true]]);
    let bob = PartyData::from_stream(vec![vec![true; N]]);
    let public = PartyData::default();
    let (chain_out, _) = run_two_party_cfg(
        &chain,
        &alice,
        &bob,
        &public,
        1,
        cfg(ScheduleMode::Layered, 1),
    );
    assert_eq!(chain_out.outputs, vec![vec![true]]);
    assert_eq!(chain_out.batching.levels, N as u64, "one level per link");
    assert_eq!(chain_out.batching.largest_batch, 1, "chains cannot batch");
    let (tx_n_out, tx_n) =
        skipgate_transcript(&chain, &alice, &bob, &public, 1, ScheduleMode::Netlist, 1);
    let (tx_l_out, tx_l) =
        skipgate_transcript(&chain, &alice, &bob, &public, 1, ScheduleMode::Layered, 1);
    assert_eq!(tx_n_out, tx_l_out);
    assert_eq!(tx_n, tx_l, "deep chain: transcripts match");

    // All-parallel: N independent ANDs — one level, one full-width batch.
    let mut b = CircuitBuilder::new("wide_parallel");
    let xs = b.inputs(Role::Alice, N);
    let ys = b.inputs(Role::Bob, N);
    let outs: Vec<_> = xs.iter().zip(&ys).map(|(&x, &y)| b.and(x, y)).collect();
    b.outputs(&outs);
    let wide = b.build();

    let mut rng = TestRng::new(99);
    let (a, bo, p) = random_inputs(&mut rng, &wide, 1);
    let sim = Simulator::new(&wide).run(&a, &bo, &p, 1);
    let (wide_out, _) = run_two_party_cfg(&wide, &a, &bo, &p, 1, cfg(ScheduleMode::Layered, 1));
    assert_eq!(wide_out.outputs, sim.outputs);
    assert_eq!(wide_out.batching.levels, 1, "all gates share one level");
    assert_eq!(
        wide_out.batching.largest_batch, N,
        "wide circuit batches the whole level"
    );
    assert_eq!(wide_out.batching.batches, 1);
}
