//! The checked-in CI bench baseline must always match what the gate
//! regenerates, so baseline drift is caught by `cargo test` locally
//! before the `bench-gate` CI job ever runs.

use arm2gc_bench::ci;
use arm2gc_core::ShardConfig;

const BASELINE: &str = include_str!("../baselines/BENCH_ci.json");

#[test]
fn checked_in_baseline_is_current() {
    let report = ci::report(ShardConfig::single());
    let drift = ci::diff(BASELINE, &report);
    assert!(
        drift.is_empty(),
        "crates/bench/baselines/BENCH_ci.json is stale:\n{}\nregenerate with \
         `cargo run --release -p arm2gc-bench --bin bench_ci -- --out \
         crates/bench/baselines/BENCH_ci.json`",
        drift.join("\n")
    );
}

#[test]
fn report_is_shard_invariant() {
    // The report omits the shard count on purpose: running the gate
    // sharded must produce byte-identical JSON.
    assert_eq!(
        ci::report(ShardConfig::single()),
        ci::report(ShardConfig::new(3))
    );
}
