//! The checked-in CI bench baseline must always match what the gate
//! regenerates, so baseline drift is caught by `cargo test` locally
//! before the `bench-gate` CI job ever runs.

use arm2gc_bench::ci;
use arm2gc_core::ShardConfig;

const BASELINE: &str = include_str!("../baselines/BENCH_ci.json");

#[test]
fn checked_in_baseline_is_current() {
    let report = ci::report(ShardConfig::single());
    let drift = ci::diff(BASELINE, &report);
    assert!(
        drift.is_empty(),
        "crates/bench/baselines/BENCH_ci.json is stale:\n{}\nregenerate with \
         `cargo run --release -p arm2gc-bench --bin bench_ci -- --out \
         crates/bench/baselines/BENCH_ci.json`",
        drift.join("\n")
    );
}

/// The instanced acceptance claim, pinned on the checked-in baseline:
/// matmul_3x3's N=8 session-wide mean batch width must be at least 5x
/// the single-instance layered width.
#[test]
fn baseline_pins_instanced_matmul_amortization() {
    let block = BASELINE
        .split("\"name\": ")
        .find(|b| b.starts_with("\"matmul_3x3_32\""))
        .expect("matmul_3x3_32 in the baseline");
    let field = |object: &str, key: &str| -> f64 {
        let obj = block
            .split(&format!("\"{object}\": {{"))
            .nth(1)
            .unwrap_or_else(|| panic!("{object} object in the matmul block"));
        let rest = obj
            .split(&format!("\"{key}\": "))
            .nth(1)
            .unwrap_or_else(|| panic!("{key} in {object}"));
        let digits: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        digits.parse().expect("numeric field")
    };
    let single = field("skipgate_layered", "batched_gates") / field("skipgate_layered", "batches");
    let inst = field("occupancy", "batched_gates") / field("occupancy", "batches");
    assert_eq!(field("instanced", "instances"), 8.0);
    assert!(
        inst >= 5.0 * single,
        "instanced N=8 mean batch {inst:.1} not 5x the single-instance {single:.1}"
    );
}

#[test]
fn report_is_shard_invariant() {
    // The report omits the shard count on purpose: running the gate
    // sharded must produce byte-identical JSON.
    assert_eq!(
        ci::report(ShardConfig::single()),
        ci::report(ShardConfig::new(3))
    );
}
