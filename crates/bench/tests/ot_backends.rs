//! The OT endpoint is pluggable end to end: the same runs over the real
//! Naor–Pinkas + IKNP stack must produce the same outputs and the same
//! cost stats as over the insecure reference OT.

use arm2gc_bench::runner::{run_baseline_with, run_skipgate_with};
use arm2gc_circuit::bench_circuits;
use arm2gc_core::{OtBackend, StreamConfig, TwoPartyConfig};
use arm2gc_cpu::asm::assemble;
use arm2gc_cpu::machine::{CpuConfig, GcMachine};
use arm2gc_cpu::programs;

#[test]
fn skipgate_circuit_over_naor_pinkas_iknp() {
    let bc = bench_circuits::compare(32, 123_456, 654_321);
    let insecure = run_skipgate_with(&bc, TwoPartyConfig::default());
    let real = run_skipgate_with(&bc, TwoPartyConfig::new().ot(OtBackend::NaorPinkasIknp));
    // The OT backend is transparent to the cost model: same number of
    // logical OTs, same tables, same bytes.
    assert_eq!(insecure, real);
}

#[test]
fn baseline_circuit_over_naor_pinkas_iknp() {
    let bc = bench_circuits::sum(32, 777, 888);
    let insecure = run_baseline_with(&bc, OtBackend::Insecure, StreamConfig::default());
    let real = run_baseline_with(&bc, OtBackend::NaorPinkasIknp, StreamConfig::lockstep());
    assert_eq!(insecure, real);
}

/// The full garbled processor over the real OT stack, through the
/// pluggable `GcMachine` entry point: SkipGate runs a CPU program
/// end-to-end over Naor–Pinkas base OTs + IKNP extension and agrees
/// with the instruction-set simulator.
#[test]
fn cpu_program_over_naor_pinkas_iknp() {
    let machine = GcMachine::new(CpuConfig::small());
    let program = assemble(&programs::sum32()).expect("assembles");
    let (alice, bob) = (&[40u32][..], &[2u32][..]);

    let iss = machine.run_iss(&program, alice, bob, 100);
    assert!(iss.halted);

    let cfg = TwoPartyConfig::new().ot(OtBackend::NaorPinkasIknp);
    let (run, stats) = machine.run_skipgate_with(&program, alice, bob, 100, cfg);
    assert_eq!(run.output, iss.output);
    assert_eq!(run.cycles, iss.cycles);
    assert_eq!(run.output[0], 42);

    // Same cost as the insecure-OT run: the backend changes only *how*
    // labels transfer, not how many.
    let (_, insecure_stats) = machine.run_skipgate(&program, alice, bob, 100);
    assert_eq!(stats, insecure_stats);
}
