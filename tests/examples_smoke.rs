//! Smoke test: the shipped examples build, and `quickstart` plus the
//! two-process `tcp_two_party` demo run to completion. Backed by real
//! `cargo` invocations so the check is the same one a user's first
//! `cargo run --example quickstart` performs.

use std::process::Command;

fn cargo() -> Command {
    // `cargo test` exports the path of the cargo that invoked it.
    let mut cmd = Command::new(env!("CARGO"));
    cmd.current_dir(env!("CARGO_MANIFEST_DIR")).arg("--offline");
    cmd
}

#[test]
fn examples_build() {
    let out = cargo()
        .args(["build", "--examples"])
        .output()
        .expect("spawn cargo");
    assert!(
        out.status.success(),
        "cargo build --examples failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn quickstart_runs_to_completion() {
    let out = cargo()
        .args(["run", "--example", "quickstart"])
        .output()
        .expect("spawn cargo");
    assert!(
        out.status.success(),
        "quickstart exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("garbled tables sent"),
        "quickstart printed unexpected output:\n{stdout}"
    );
}

#[test]
fn tcp_two_party_runs_both_processes() {
    let out = cargo()
        .args(["run", "--example", "tcp_two_party"])
        .output()
        .expect("spawn cargo");
    assert!(
        out.status.success(),
        "tcp_two_party exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("evaluator process exited cleanly"),
        "tcp_two_party printed unexpected output:\n{stdout}"
    );
}

#[test]
fn tcp_two_party_runs_instanced_lanes() {
    let out = cargo()
        .args([
            "run",
            "--example",
            "tcp_two_party",
            "--",
            "--instances",
            "3",
        ])
        .output()
        .expect("spawn cargo");
    assert!(
        out.status.success(),
        "tcp_two_party --instances 3 exited nonzero:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Lane 2 flips the millionaires' winner (Alice at 7.3M vs Bob's
    // 7.1M), proving each lane computed on its own inputs.
    assert!(
        stdout.contains("lane 0: Bob is richer") && stdout.contains("lane 2: Alice is richer"),
        "instanced lanes printed unexpected results:\n{stdout}"
    );
    assert!(
        stdout.contains("all lanes verified against the in-process simulator"),
        "instanced run did not verify all lanes:\n{stdout}"
    );
    assert!(
        stdout.contains("evaluator process exited cleanly"),
        "instanced run's evaluator did not exit cleanly:\n{stdout}"
    );
}
