//! Property-based tests (proptest) on the workspace's core invariants.
//!
//! Two tiers:
//!
//! * **fast** (default) — every property below runs a bounded number of
//!   cases (256, overridable with the `PROPTEST_CASES` environment
//!   variable) so `cargo test -q` stays interactive;
//! * **slow** — the `#[ignore]`d deep-fuzz properties at the bottom run
//!   far more and larger cases: `cargo test -- --ignored`, optionally
//!   with `PROPTEST_CASES=<n>` to push further.

use proptest::prelude::*;

use arm2gc::circuit::random::{random_circuit, random_inputs, RandomCircuitParams, TestRng};
use arm2gc::circuit::sim::Simulator;
use arm2gc::circuit::words::{bits_to_words, words_to_bits};
use arm2gc::circuit::{CircuitBuilder, Op, OutputMode, Role};
use arm2gc::core::{run_two_party, run_two_party_cfg, ShardConfig, TwoPartyConfig};
use arm2gc::crypto::{Aes128, Delta, GarbleHash, Label, Prg};
use arm2gc::garble::{HalfGateEvaluator, HalfGateGarbler};

/// `PROPTEST_CASES` (via `ProptestConfig::default`) wins over the tier's
/// bounded default, with both the real proptest and the offline shim.
fn cases_or(default_cases: u32) -> ProptestConfig {
    if std::env::var_os("PROPTEST_CASES").is_some() {
        ProptestConfig::default()
    } else {
        ProptestConfig::with_cases(default_cases)
    }
}

proptest! {
    #![proptest_config(cases_or(256))]

    /// AES is a permutation: distinct plaintexts encrypt distinctly.
    #[test]
    fn aes_injective(key: [u8; 16], a: u128, b: u128) {
        prop_assume!(a != b);
        let aes = Aes128::new(key);
        prop_assert_ne!(aes.encrypt_u128(a), aes.encrypt_u128(b));
    }

    /// The garbling hash never collides across tweaks on the same label
    /// (within the tested domain) and is deterministic.
    #[test]
    fn garble_hash_tweak_separation(l: u128, t1 in 0u64..1000, t2 in 0u64..1000) {
        let h = GarbleHash::fixed();
        let label = Label::from_u128(l);
        if t1 == t2 {
            prop_assert_eq!(h.hash(label, t1), h.hash(label, t2));
        } else {
            prop_assert_ne!(h.hash(label, t1), h.hash(label, t2));
        }
    }

    /// Half-gate garble/eval correctness over random labels, all
    /// nonlinear ops, all input values.
    #[test]
    fn halfgate_correct(seed: [u8; 16], tt in 0u8..16, va: bool, vb: bool, tweak: u64) {
        let op = Op::from_table(tt);
        prop_assume!(!op.is_linear());
        let mut prg = Prg::from_seed(seed);
        let delta = Delta::random(&mut prg);
        let g = HalfGateGarbler::new(delta);
        let e = HalfGateEvaluator::new();
        let a0 = Label::random(&mut prg);
        let b0 = Label::random(&mut prg);
        let (c0, table) = g.garble(op, a0, b0, tweak);
        let d = delta.as_label();
        let la = if va { a0 ^ d } else { a0 };
        let lb = if vb { b0 ^ d } else { b0 };
        let got = e.eval(la, lb, &table, tweak);
        let want = if op.eval(va, vb) { c0 ^ d } else { c0 };
        prop_assert_eq!(got, want);
    }

    /// Word/bit conversion roundtrips.
    #[test]
    fn words_bits_roundtrip(ws in proptest::collection::vec(any::<u32>(), 0..20)) {
        prop_assert_eq!(bits_to_words(&words_to_bits(&ws)), ws);
    }

    /// SkipGate equals the cleartext simulator on random sequential
    /// circuits with random public/private inputs — the paper's
    /// correctness theorem (§3.5), tested adversarially.
    #[test]
    fn skipgate_matches_simulator(seed in 1u64..5000, cycles in 1usize..5) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (2, 2, 2),
            dffs: 3,
            gates: 30,
            outputs: 4,
            output_mode: if seed % 2 == 0 { OutputMode::PerCycle } else { OutputMode::FinalOnly },
        };
        let c = random_circuit(&mut rng, params);
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let sim = Simulator::new(&c).run(&a, &b, &p, cycles);
        let (alice_out, bob_out) = run_two_party(&c, &a, &b, &p, cycles);
        prop_assert_eq!(&alice_out.outputs, &sim.outputs);
        prop_assert_eq!(&bob_out.outputs, &sim.outputs);
        // Cost sanity: never exceeds the static bound.
        let bound = c.non_xor_count() * cycles as u64;
        prop_assert!(alice_out.stats.garbled_tables <= bound);
    }

    /// Sharded evaluation is transport-only: on random sequential
    /// circuits, splitting the table stream across 2–4 sub-channels
    /// decodes the same outputs with identical cost stats as the
    /// unsharded run (and both match the cleartext simulator).
    #[test]
    fn sharded_run_matches_unsharded(seed in 1u64..5000, cycles in 1usize..5, shards in 2usize..5) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (2, 2, 2),
            dffs: 3,
            gates: 30,
            outputs: 4,
            output_mode: if seed % 2 == 0 { OutputMode::PerCycle } else { OutputMode::FinalOnly },
        };
        let c = random_circuit(&mut rng, params);
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let sim = Simulator::new(&c).run(&a, &b, &p, cycles);
        let (alice1, bob1) = run_two_party(&c, &a, &b, &p, cycles);
        let cfg = TwoPartyConfig::new().shards(ShardConfig::new(shards));
        let (alice_n, bob_n) = run_two_party_cfg(&c, &a, &b, &p, cycles, cfg);
        prop_assert_eq!(&alice_n.outputs, &sim.outputs);
        prop_assert_eq!(&bob_n.outputs, &sim.outputs);
        prop_assert_eq!(alice_n.outputs, alice1.outputs);
        prop_assert_eq!(bob_n.outputs, bob1.outputs);
        prop_assert_eq!(alice_n.stats, alice1.stats);
        prop_assert_eq!(bob_n.stats, bob1.stats);
    }

    /// The circuit adder agrees with machine arithmetic for arbitrary
    /// widths and operands (stdlib invariant).
    #[test]
    fn adder_matches_u64(a: u32, b: u32, width in 1usize..32) {
        let mask = if width == 32 { u32::MAX } else { (1 << width) - 1 };
        let (a, b) = (a & mask, b & mask);
        let mut bld = CircuitBuilder::new("prop_add");
        let xa = bld.inputs(Role::Alice, width);
        let xb = bld.inputs(Role::Bob, width);
        let (sum, carry) = bld.add(&xa, &xb);
        bld.outputs(&sum);
        bld.output(carry);
        let c = bld.build();
        let bits_a: Vec<bool> = (0..width).map(|i| (a >> i) & 1 == 1).collect();
        let bits_b: Vec<bool> = (0..width).map(|i| (b >> i) & 1 == 1).collect();
        let out = Simulator::new(&c).run_comb(&bits_a, &bits_b, &[]);
        let total = a as u64 + b as u64;
        for (i, &bit) in out.iter().enumerate() {
            prop_assert_eq!(bit, (total >> i) & 1 == 1, "bit {}", i);
        }
    }

    /// Multiplier invariant: mul_lo equals wrapping multiplication.
    #[test]
    fn mul_lo_matches_wrapping(a: u16, b: u16) {
        let mut bld = CircuitBuilder::new("prop_mul");
        let xa = bld.inputs(Role::Alice, 16);
        let xb = bld.inputs(Role::Bob, 16);
        let p = bld.mul_lo(&xa, &xb);
        bld.outputs(&p);
        let c = bld.build();
        let bits = |v: u16| (0..16).map(|i| (v >> i) & 1 == 1).collect::<Vec<_>>();
        let out = Simulator::new(&c).run_comb(&bits(a), &bits(b), &[]);
        let got: u16 = out.iter().enumerate().fold(0, |acc, (i, &bit)| acc | ((bit as u16) << i));
        prop_assert_eq!(got, a.wrapping_mul(b));
    }
}

// --- slow tier -----------------------------------------------------------
//
// Run with `cargo test -- --ignored` (and optionally `PROPTEST_CASES=<n>`).

proptest! {
    #![proptest_config(cases_or(20_000))]

    /// Deep version of `skipgate_matches_simulator`: bigger circuits,
    /// more flip-flops, longer runs, many more seeds.
    #[test]
    #[ignore = "slow tier: run with `cargo test -- --ignored`"]
    fn skipgate_matches_simulator_deep(seed in 1u64..1_000_000, cycles in 1usize..12) {
        let mut rng = TestRng::new(seed);
        let params = RandomCircuitParams {
            inputs: (4, 4, 4),
            dffs: 8,
            gates: 120,
            outputs: 8,
            output_mode: if seed % 2 == 0 { OutputMode::PerCycle } else { OutputMode::FinalOnly },
        };
        let c = random_circuit(&mut rng, params);
        let (a, b, p) = random_inputs(&mut rng, &c, cycles);
        let sim = Simulator::new(&c).run(&a, &b, &p, cycles);
        let (alice_out, bob_out) = run_two_party(&c, &a, &b, &p, cycles);
        prop_assert_eq!(&alice_out.outputs, &sim.outputs);
        prop_assert_eq!(&bob_out.outputs, &sim.outputs);
        let bound = c.non_xor_count() * cycles as u64;
        prop_assert!(alice_out.stats.garbled_tables <= bound);
    }
}
