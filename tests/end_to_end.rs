//! Workspace-level integration tests: full protocol stacks spanning
//! every crate (crypto → ot → garble/core → cpu).

use arm2gc::circuit::bench_circuits;
use arm2gc::circuit::sim::Simulator;
use arm2gc::comm::{duplex, Channel, CountingChannel};
use arm2gc::core::{run_skipgate_evaluator, run_skipgate_garbler, run_two_party, SkipGateOptions};
use arm2gc::cpu::asm::assemble;
use arm2gc::cpu::machine::{CpuConfig, GcMachine};
use arm2gc::cpu::programs;
use arm2gc::crypto::Prg;
use arm2gc::ot::{IknpReceiver, IknpSender, MersenneGroup, NaorPinkasReceiver, NaorPinkasSender};

/// The complete real-crypto stack: Naor–Pinkas base OTs, IKNP extension,
/// SkipGate on a CPU program, with byte-counted channels.
#[test]
fn full_stack_cpu_run_with_real_ot() {
    let machine = GcMachine::new(CpuConfig::small());
    let program = assemble(&programs::sum32()).expect("assembles");
    let (a, b, p) = machine.party_data(&program, &[41], &[1]);

    let (ca, cb) = duplex();
    let (mut ca, stats_a) = CountingChannel::new(ca);
    let (mut cb, _stats_b) = CountingChannel::new(cb);
    let group = MersenneGroup::test_group();

    let circuit = machine.circuit().clone();
    let g2 = group.clone();
    let p2 = p.clone();
    let garbler = std::thread::spawn(move || {
        let mut prg = Prg::from_seed([71; 16]);
        let mut setup = Prg::from_seed([72; 16]);
        let mut base = NaorPinkasReceiver::new(g2, Prg::from_seed([73; 16]));
        let mut ot = IknpSender::setup(&mut base, &mut ca, &mut setup).expect("iknp setup");
        run_skipgate_garbler(
            &circuit,
            &a,
            &p2,
            64,
            &mut ca,
            &mut ot,
            &mut prg,
            SkipGateOptions::default(),
        )
        .expect("garbler")
    });

    let mut setup = Prg::from_seed([74; 16]);
    let mut base = NaorPinkasSender::new(group, Prg::from_seed([75; 16]));
    let mut ot = IknpReceiver::setup(&mut base, &mut cb, &mut setup).expect("iknp setup");
    let bob_out = run_skipgate_evaluator(
        machine.circuit(),
        &b,
        &p,
        64,
        &mut cb,
        &mut ot,
        SkipGateOptions::default(),
    )
    .expect("evaluator");
    let alice_out = garbler.join().expect("garbler thread");

    assert_eq!(alice_out.outputs, bob_out.outputs);
    let sum: u32 = alice_out.final_output()[..32]
        .iter()
        .enumerate()
        .fold(0, |acc, (i, &bit)| acc | ((bit as u32) << i));
    assert_eq!(sum, 42);
    // 31 tables à 32 bytes plus input labels and OT traffic.
    assert_eq!(alice_out.stats.garbled_tables, 31);
    assert!(stats_a.sent_bytes() > 31 * 32);
}

/// Byte accounting: SkipGate's table traffic must be exactly
/// `32 × garbled_tables`, dwarfed by the baseline's.
#[test]
fn communication_accounting_matches_tables() {
    let bc = bench_circuits::hamming(160, &[1, 2, 3, 4, 5], &[5, 4, 3, 2, 1]);
    let (alice_out, bob_out) =
        run_two_party(&bc.circuit, &bc.alice, &bc.bob, &bc.public, bc.cycles);
    assert_eq!(
        alice_out.stats.table_bytes,
        alice_out.stats.garbled_tables * 32
    );
    assert_eq!(alice_out.stats.table_bytes, bob_out.stats.table_bytes);
    assert_eq!(alice_out.stats.garbled_tables, 1092); // paper Table 1
}

/// The three executors (ISS, cleartext circuit sim, SkipGate protocol)
/// agree on a nontrivial program, and the protocol halts early exactly
/// like the ISS does.
#[test]
fn three_executors_agree_and_halt_together() {
    let machine = GcMachine::new(CpuConfig::small());
    let program = assemble(&programs::bubble_sort(6)).expect("assembles");
    let alice = [99u32, 5, 7, 300, 2, 2];
    let bob = [7u32; 6];

    let iss = machine.run_iss(&program, &alice, &bob, 100_000);
    let sim = machine.run_sim(&program, &alice, &bob, 100_000);
    let (skip, stats) = machine.run_skipgate(&program, &alice, &bob, 100_000);

    assert!(iss.halted);
    assert_eq!(sim.output, iss.output);
    assert_eq!(skip.output, iss.output);
    assert_eq!(sim.cycles, iss.cycles);
    assert_eq!(stats.cycles_run, iss.cycles);

    let mut expected: Vec<u32> = alice.iter().zip(&bob).map(|(a, b)| a ^ b).collect();
    expected.sort_unstable();
    assert_eq!(&skip.output[..6], &expected[..]);
}

/// Secret branches stay *correct* (just expensive): the gate-level
/// framework needs no special case for a secret program counter.
#[test]
fn secret_pc_remains_correct() {
    let machine = GcMachine::new(CpuConfig::small());
    // Branch on a secret comparison — Figure 6's anti-pattern.
    let program = assemble(
        "       ldr r0, [r8]
                ldr r1, [r9]
                cmp r0, r1
                blo less
                str r1, [r10]      ; min = b
                halt
         less:  str r0, [r10]      ; min = a
                halt",
    )
    .expect("assembles");

    for (a, b) in [(10u32, 20u32), (20, 10), (7, 7)] {
        let iss = machine.run_iss(&program, &[a], &[b], 8);
        let (aa, bb, pp) = machine.party_data(&program, &[a], &[b]);
        let (alice_out, bob_out) = run_two_party(machine.circuit(), &aa, &bb, &pp, 8);
        assert_eq!(alice_out.outputs, bob_out.outputs);
        let out: u32 = alice_out.final_output()[..32]
            .iter()
            .enumerate()
            .fold(0, |acc, (i, &bit)| acc | ((bit as u32) << i));
        assert_eq!(out, iss.output[0], "min({a},{b})");
        assert_eq!(out, a.min(b));
    }
}

/// Baseline and SkipGate engines agree with the simulator and each
/// other on the same AES run.
#[test]
fn baseline_and_skipgate_agree_on_aes() {
    use arm2gc::garble::{run_evaluator, run_garbler};
    use arm2gc::ot::InsecureOt;

    let key: Vec<u8> = (50..66).collect();
    let pt: Vec<u8> = (200..216).collect();
    let bc = bench_circuits::aes128(key.try_into().unwrap(), pt.try_into().unwrap());

    let sim = Simulator::new(&bc.circuit).run(&bc.alice, &bc.bob, &bc.public, bc.cycles);

    let (skip_a, _) = run_two_party(&bc.circuit, &bc.alice, &bc.bob, &bc.public, bc.cycles);
    assert_eq!(skip_a.outputs, sim.outputs);

    let (mut ca, mut cb) = duplex();
    let (c2, a2, p2) = (bc.circuit.clone(), bc.alice.clone(), bc.public.clone());
    let cycles = bc.cycles;
    let garbler = std::thread::spawn(move || {
        let mut prg = Prg::from_seed([81; 16]);
        run_garbler(&c2, &a2, &p2, cycles, &mut ca, &mut InsecureOt, &mut prg).expect("garbler")
    });
    let base_b =
        run_evaluator(&bc.circuit, &bc.bob, bc.cycles, &mut cb, &mut InsecureOt).expect("eval");
    let base_a = garbler.join().unwrap();
    assert_eq!(base_a.outputs, sim.outputs);
    assert_eq!(base_b.outputs, sim.outputs);

    // SkipGate strictly cheaper than the baseline on the same circuit.
    assert!(skip_a.stats.garbled_tables < base_a.stats.garbled_tables);
}

/// Slow tier (`cargo test -- --ignored`): the executor-agreement check
/// on a much larger sort — thousands of CPU cycles through the full
/// SkipGate protocol.
#[test]
#[ignore = "slow tier: run with `cargo test -- --ignored`"]
fn three_executors_agree_on_large_sort() {
    let machine = GcMachine::new(CpuConfig::small());
    let n = 16;
    let program = assemble(&programs::bubble_sort(n)).expect("assembles");
    let alice: Vec<u32> = (0..n as u32)
        .map(|i| i.wrapping_mul(2_654_435_761) ^ 0xa5a5)
        .collect();
    let bob: Vec<u32> = (0..n as u32).map(|i| i * 97 + 13).collect();

    let iss = machine.run_iss(&program, &alice, &bob, 1_000_000);
    let sim = machine.run_sim(&program, &alice, &bob, 1_000_000);
    let (skip, stats) = machine.run_skipgate(&program, &alice, &bob, 1_000_000);

    assert!(iss.halted);
    assert_eq!(sim.output, iss.output);
    assert_eq!(skip.output, iss.output);
    assert_eq!(sim.cycles, iss.cycles);
    assert_eq!(stats.cycles_run, iss.cycles);

    let mut expected: Vec<u32> = alice.iter().zip(&bob).map(|(a, b)| a ^ b).collect();
    expected.sort_unstable();
    assert_eq!(&skip.output[..n], &expected[..]);
}

/// Channels deliver arbitrary message sizes in order under threading.
#[test]
fn channel_stress() {
    let (mut a, mut b) = duplex();
    let t = std::thread::spawn(move || {
        for i in 0..200usize {
            let msg = vec![(i % 251) as u8; i * 7 % 1024];
            a.send(&msg).unwrap();
        }
    });
    for i in 0..200usize {
        let msg = b.recv().unwrap();
        assert_eq!(msg.len(), i * 7 % 1024);
        assert!(msg.iter().all(|&x| x == (i % 251) as u8));
    }
    t.join().unwrap();
}
